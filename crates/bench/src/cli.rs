//! Shared command-line parsing for the `figures` and `sweep` binaries.
//!
//! Parsing never panics: errors come back as `Err(message)` so binaries can
//! print the message plus their usage text and exit non-zero, instead of
//! dumping a backtrace at the user.

use simt_harness::{DesignPoint, Harness, Overrides, ResultCache};
use std::path::PathBuf;

/// Default per-job ring-buffer capacity for `--trace` (newest events kept).
pub const DEFAULT_TRACE_EVENTS: usize = 1_000_000;

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// `--scale N` — workload scale factor (default 1).
    pub scale: u32,
    /// `--bench A,B,...` — restrict to these abbreviations (default: all).
    pub bench_filter: Option<Vec<String>>,
    /// `--jobs N` — worker threads (default: available parallelism).
    pub jobs: usize,
    /// `--no-cache` clears this; `--cache-dir DIR` moves the cache root.
    pub cache: bool,
    /// Cache directory (default `results/cache`).
    pub cache_dir: PathBuf,
    /// `--out DIR` — write JSONL run artifacts here (sweep defaults to
    /// `results/runs`; figures defaults to off).
    pub out: Option<PathBuf>,
    /// `--designs a,b,...` — design points to run (default: sweep runs
    /// baseline/cae/mta/dac).
    pub designs: Option<Vec<DesignPoint>>,
    /// `--set key=value` (repeatable) — configuration overrides.
    pub overrides: Overrides,
    /// `--full-chip` — pin the full GTX 480 chip (15 SMs, 48 warps/SM)
    /// as explicit overrides, so artifacts record the machine size.
    pub full_chip: bool,
    /// `--trace` / `--trace-dir DIR` — write per-job event traces here
    /// (`None` = tracing off).
    pub trace_dir: Option<PathBuf>,
    /// `--trace-events N` — ring-buffer capacity per traced job.
    pub trace_events: usize,
    /// `--quiet` — suppress per-job progress lines.
    pub quiet: bool,
    /// Positional arguments (the experiment name for `figures`).
    pub positional: Vec<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 1,
            bench_filter: None,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache: true,
            cache_dir: ResultCache::default_dir(),
            out: None,
            designs: None,
            overrides: Overrides::default(),
            full_chip: false,
            trace_dir: None,
            trace_events: DEFAULT_TRACE_EVENTS,
            quiet: false,
            positional: Vec::new(),
        }
    }
}

impl CommonArgs {
    /// Parse an argument list (without the program name). `Err` is a
    /// one-line message suitable for printing above the usage text; the
    /// special message `"help"` means `-h`/`--help` was given.
    pub fn parse(args: &[String]) -> Result<CommonArgs, String> {
        let mut out = CommonArgs::default();
        let mut set_keys: Vec<String> = Vec::new();
        let mut it = args.iter();
        let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "-h" | "--help" => return Err("help".into()),
                "--scale" => {
                    let v = value("--scale", &mut it)?;
                    out.scale = v
                        .parse()
                        .map_err(|_| format!("--scale: expected a positive number, got {v:?}"))?;
                    if out.scale == 0 {
                        return Err("--scale must be at least 1".into());
                    }
                }
                "--bench" => {
                    out.bench_filter = Some(
                        value("--bench", &mut it)?
                            .split(',')
                            .map(|s| s.trim().to_uppercase())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    );
                }
                "--jobs" | "-j" => {
                    let v = value("--jobs", &mut it)?;
                    out.jobs = v
                        .parse()
                        .map_err(|_| format!("--jobs: expected a positive number, got {v:?}"))?;
                    if out.jobs == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                }
                "--no-cache" => out.cache = false,
                "--cache-dir" => out.cache_dir = PathBuf::from(value("--cache-dir", &mut it)?),
                "--out" => out.out = Some(PathBuf::from(value("--out", &mut it)?)),
                "--designs" => {
                    let v = value("--designs", &mut it)?;
                    let mut points = Vec::new();
                    for name in v.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        points.push(DesignPoint::parse(name).ok_or_else(|| {
                            format!(
                                "--designs: unknown design {name:?} \
                                 (expected baseline, cae, mta, dac, or perfect)"
                            )
                        })?);
                    }
                    if points.is_empty() {
                        return Err("--designs requires at least one design".into());
                    }
                    out.designs = Some(points);
                }
                "--set" => {
                    let v = value("--set", &mut it)?;
                    let (key, val) = v
                        .split_once('=')
                        .ok_or_else(|| format!("--set: expected key=value, got {v:?}"))?;
                    let key = key.trim();
                    if set_keys.iter().any(|k| k == key) {
                        return Err(format!(
                            "--set: duplicate knob {key:?} (each knob may be set once)"
                        ));
                    }
                    out.overrides.set(key, val.trim())?;
                    set_keys.push(key.to_string());
                }
                "--full-chip" => {
                    // The preset is spelled as ordinary overrides so the
                    // machine size lands in cache keys and artifacts, and
                    // the duplicate-knob check catches conflicting --set.
                    for (k, v) in [("num_sms", "15"), ("max_warps_per_sm", "48")] {
                        if set_keys.iter().any(|s| s == k) {
                            return Err(format!("--full-chip conflicts with --set {k}"));
                        }
                        out.overrides.set(k, v)?;
                        set_keys.push(k.to_string());
                    }
                    out.full_chip = true;
                }
                "--no-fast-forward" => out.overrides.no_fast_forward = true,
                "--threads" => {
                    let v = value("--threads", &mut it)?;
                    let t: usize = v
                        .parse()
                        .map_err(|_| format!("--threads: expected a positive number, got {v:?}"))?;
                    if t == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    out.overrides.threads = Some(t);
                }
                "--trace" => {
                    out.trace_dir
                        .get_or_insert_with(|| PathBuf::from("results/traces"));
                }
                "--trace-dir" => {
                    out.trace_dir = Some(PathBuf::from(value("--trace-dir", &mut it)?));
                }
                "--trace-events" => {
                    let v = value("--trace-events", &mut it)?;
                    out.trace_events = v
                        .parse()
                        .map_err(|_| format!("--trace-events: expected a number, got {v:?}"))?;
                }
                "--quiet" | "-q" => out.quiet = true,
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                _ => out.positional.push(arg.clone()),
            }
        }
        Ok(out)
    }

    /// Build the harness these arguments describe. `artifacts_default`
    /// supplies the binary's default artifact directory when `--out` was
    /// not given (`None` = artifacts off unless requested).
    pub fn harness(&self, artifacts_default: Option<&str>) -> Harness {
        let mut h = Harness::new(self.jobs).verbose(!self.quiet);
        if self.cache {
            h = h.with_cache(ResultCache::new(&self.cache_dir));
        }
        let artifacts = self
            .out
            .clone()
            .or_else(|| artifacts_default.map(PathBuf::from));
        if let Some(dir) = artifacts {
            h = h.with_artifacts(dir);
        }
        if let Some(dir) = &self.trace_dir {
            h = h.with_trace(dir, self.trace_events);
        }
        h
    }

    /// The benchmark list after `--scale` and `--bench`. `Err` when the
    /// filter names an unknown benchmark (catching typos up front, instead
    /// of silently running an empty suite).
    pub fn benchmarks(&self) -> Result<Vec<gpu_workloads::Workload>, String> {
        let mut benches = gpu_workloads::all_benchmarks(self.scale);
        if let Some(filter) = &self.bench_filter {
            for abbr in filter {
                if !benches.iter().any(|w| w.abbr.eq_ignore_ascii_case(abbr)) {
                    return Err(format!(
                        "--bench: unknown benchmark {abbr:?} (see Table 2 for abbreviations)"
                    ));
                }
            }
            benches.retain(|w| filter.iter().any(|f| w.abbr.eq_ignore_ascii_case(f)));
        }
        Ok(benches)
    }
}

/// The flag reference shared by both binaries' usage text.
pub const COMMON_USAGE: &str = "\
common options:
  --scale N          workload scale factor (default 1)
  --bench A,B,...    only these benchmarks (Table 2 abbreviations)
  --jobs N, -j N     worker threads (default: all cores)
  --no-cache         ignore and do not update results/cache
  --cache-dir DIR    result cache location (default results/cache)
  --out DIR          write JSONL run artifacts to DIR
  --designs a,b,...  design points: baseline, cae, mta, dac, perfect
  --set KEY=VALUE    config override (repeatable, each knob once); knobs:
                     atq_entries, pwaq_total, pwpq_total, lock_lines,
                     divergent_tuples, num_sms, max_warps_per_sm,
                     streams (multi-kernel scenario: smem_pressure,
                     reg_pressure, pipeline), cta_policy (greedy|rr)
  --full-chip        full GTX 480 preset: 15 SMs, 48 warps/SM, recorded as
                     explicit num_sms/max_warps_per_sm overrides
  --no-fast-forward  disable idle-cycle fast-forward (same results, slower)
  --threads N        worker threads *inside* each simulation, sharding SMs
                     and L2 partitions (default 1; results byte-identical;
                     unlike --jobs, which runs whole jobs in parallel)
  --trace            write per-job event traces to results/traces
  --trace-dir DIR    write per-job event traces to DIR (implies --trace)
  --trace-events N   trace ring-buffer capacity (default 1000000)
  --quiet, -q        no per-job progress on stderr
  --help, -h         this text";

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::Design;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        CommonArgs::parse(&owned)
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 1);
        assert!(a.cache);
        assert!(a.jobs >= 1);
        assert!(a.positional.is_empty());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "fig16",
            "--scale",
            "2",
            "--bench",
            "lib,mq",
            "--jobs",
            "4",
            "--no-cache",
            "--out",
            "/tmp/runs",
            "--designs",
            "baseline,dac",
            "--set",
            "atq_entries=12",
            "-q",
        ])
        .unwrap();
        assert_eq!(a.positional, vec!["fig16"]);
        assert_eq!(a.scale, 2);
        assert_eq!(a.bench_filter, Some(vec!["LIB".into(), "MQ".into()]));
        assert_eq!(a.jobs, 4);
        assert!(!a.cache);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/runs")));
        assert_eq!(
            a.designs,
            Some(vec![
                DesignPoint::Hw(Design::Baseline),
                DesignPoint::Hw(Design::Dac)
            ])
        );
        assert_eq!(a.overrides.atq_entries, Some(12));
        assert!(a.quiet);
    }

    #[test]
    fn errors_do_not_panic() {
        for bad in [
            vec!["--scale"],
            vec!["--scale", "zero"],
            vec!["--scale", "0"],
            vec!["--jobs", "-3"],
            vec!["--designs", "warp9"],
            vec!["--set", "atq_entries"],
            vec!["--set", "warp_speed=9"],
            vec!["--frobnicate"],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?} should be rejected");
        }
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn duplicate_set_key_is_rejected() {
        let err = parse(&["--set", "atq_entries=12", "--set", "atq_entries=24"]).unwrap_err();
        assert!(err.contains("duplicate"), "got: {err}");
        // Distinct knobs remain composable.
        let ok = parse(&["--set", "atq_entries=12", "--set", "pwaq_total=64"]).unwrap();
        assert_eq!(ok.overrides.atq_entries, Some(12));
        assert_eq!(ok.overrides.pwaq_total, Some(64));
    }

    #[test]
    fn trace_flags() {
        let off = parse(&[]).unwrap();
        assert!(off.trace_dir.is_none());
        assert_eq!(off.trace_events, DEFAULT_TRACE_EVENTS);
        let on = parse(&["--trace"]).unwrap();
        assert_eq!(
            on.trace_dir.as_deref(),
            Some(std::path::Path::new("results/traces"))
        );
        let custom = parse(&["--trace-dir", "/tmp/tr", "--trace-events", "512"]).unwrap();
        assert_eq!(
            custom.trace_dir.as_deref(),
            Some(std::path::Path::new("/tmp/tr"))
        );
        assert_eq!(custom.trace_events, 512);
        // --trace after --trace-dir must not clobber the explicit dir.
        let both = parse(&["--trace-dir", "/tmp/tr", "--trace"]).unwrap();
        assert_eq!(
            both.trace_dir.as_deref(),
            Some(std::path::Path::new("/tmp/tr"))
        );
        assert!(parse(&["--trace-events", "lots"]).is_err());
    }

    #[test]
    fn full_chip_preset() {
        let a = parse(&["--full-chip"]).unwrap();
        assert!(a.full_chip);
        assert_eq!(a.overrides.num_sms, Some(15));
        assert_eq!(a.overrides.max_warps_per_sm, Some(48));
        // Conflicting machine-size overrides are rejected in either order.
        assert!(parse(&["--full-chip", "--set", "num_sms=2"]).is_err());
        assert!(parse(&["--set", "num_sms=2", "--full-chip"]).is_err());
    }

    #[test]
    fn streams_knob() {
        let a = parse(&["--set", "streams=PIPELINE", "--set", "cta_policy=rr"]).unwrap();
        assert_eq!(a.overrides.streams.as_deref(), Some("pipeline"));
        assert_eq!(
            a.overrides.cta_policy,
            Some(simt_sim::PlacementPolicy::RoundRobin)
        );
        assert!(parse(&["--set", "streams=warp9"]).is_err());
        assert!(parse(&["--set", "cta_policy=random"]).is_err());
    }

    #[test]
    fn no_fast_forward_flag() {
        assert!(!parse(&[]).unwrap().overrides.no_fast_forward);
        assert!(
            parse(&["--no-fast-forward"])
                .unwrap()
                .overrides
                .no_fast_forward
        );
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&[]).unwrap().overrides.threads, None);
        assert_eq!(
            parse(&["--threads", "4"]).unwrap().overrides.threads,
            Some(4)
        );
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(parse(&["--threads"]).is_err());
    }

    #[test]
    fn unknown_bench_is_caught() {
        let a = parse(&["--bench", "LIB,NOPE"]).unwrap();
        assert!(a.benchmarks().is_err());
        let ok = parse(&["--bench", "lib"]).unwrap();
        assert_eq!(ok.benchmarks().unwrap().len(), 1);
    }
}

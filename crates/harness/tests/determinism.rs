//! The harness's central guarantee: `--jobs N` produces byte-identical
//! aggregated results to a serial run, for every N. Four workloads from
//! different corners of the suite (streaming, compute, stencil, and DAC's
//! irregular worst case) under all four designs, serialized through the
//! artifact schema and compared as bytes.

use gpu_workloads::benchmark;
use simt_harness::{artifact, suite_jobs, DesignPoint, Harness, Job, Overrides};

fn jobs() -> Vec<Job> {
    let overrides = Overrides {
        // A 2-SM, 16-warp machine keeps 16 simulations affordable in
        // debug-mode CI without changing any code path under test.
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    let benches = ["LIB", "MQ", "ST", "BFS"]
        .iter()
        .map(|a| benchmark(a, 1).expect("known benchmark"))
        .collect();
    suite_jobs(benches, 1, &DesignPoint::HW_ALL, &overrides)
}

/// Serialize results without the per-invocation fields (wall time is the
/// one thing allowed to differ between runs).
fn fingerprint(jobs: &[Job], results: &[simt_harness::JobResult]) -> Vec<u8> {
    let mut out = Vec::new();
    for (job, result) in jobs.iter().zip(results) {
        out.extend_from_slice(
            artifact::to_json(job, result, None, None)
                .to_json()
                .as_bytes(),
        );
        out.push(b'\n');
    }
    out
}

/// Tracing is pure observation: with a tracer attached, every workload ×
/// design must produce a byte-identical report (cycles, all counters,
/// memory stats, output digest) to the untraced run — through the same
/// artifact serialization the harness ships.
///
/// This also pins two hot-path rewrites. The four workloads drive every
/// scratch-buffer path in the SM loop (reused issue/writeback/LSU
/// buffers), and because an attached tracer disables idle-cycle
/// fast-forward, each comparison here is *also* a fast-forwarded run
/// (untraced, default on) against a cycle-by-cycle run (traced).
#[test]
fn tracing_does_not_perturb_results() {
    for job in jobs() {
        let plain = job.execute();
        let mut sink = simt_trace::RingSink::new(1 << 20);
        let traced = job.execute_traced(&mut sink);
        let a = artifact::to_json(&job, &plain, None, None).to_json();
        let b = artifact::to_json(&job, &traced, None, None).to_json();
        assert_eq!(a, b, "{}: tracing changed the simulation", job.label());
        assert!(
            sink.emitted() > 0,
            "{}: traced run emitted no events",
            job.label()
        );
    }
}

/// Idle-cycle fast-forward is a pure simulator-speed optimization: for
/// BFS (irregular, short idle stretches) and MQ (long memory-bound idle
/// stretches) under all four designs, the default run must produce a
/// byte-identical artifact — cycle count, every counter, memory stats,
/// output digest — to a `--no-fast-forward` run. `no_fast_forward` is
/// excluded from the serialized overrides precisely because of this
/// guarantee, so the artifacts compare as raw bytes.
#[test]
fn fast_forward_does_not_perturb_results() {
    let fast = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    let slow = Overrides {
        no_fast_forward: true,
        ..fast.clone()
    };
    let benches = |o: &Overrides| {
        suite_jobs(
            ["BFS", "MQ"]
                .iter()
                .map(|a| benchmark(a, 1).expect("known benchmark"))
                .collect(),
            1,
            &DesignPoint::HW_ALL,
            o,
        )
    };
    let fast_jobs = benches(&fast);
    let slow_jobs = benches(&slow);
    assert_eq!(fast_jobs.len(), 8, "2 workloads x 4 designs");
    for (fj, sj) in fast_jobs.iter().zip(&slow_jobs) {
        let fr = fj.execute();
        let sr = sj.execute();
        assert_eq!(
            fr.report.cycles,
            sr.report.cycles,
            "{}: fast-forward changed the cycle count",
            fj.label()
        );
        let a = artifact::to_json(fj, &fr, None, None).to_json();
        let b = artifact::to_json(sj, &sr, None, None).to_json();
        assert_eq!(a, b, "{}: fast-forward changed the artifact", fj.label());
    }
}

#[test]
fn parallel_results_are_byte_identical_to_serial() {
    let jobs = jobs();
    assert_eq!(jobs.len(), 16, "4 workloads x 4 designs");
    let serial = Harness::serial().run(&jobs);
    let bytes = fingerprint(&jobs, &serial.results);
    for workers in [2, 4] {
        let parallel = Harness::new(workers).run(&jobs);
        assert_eq!(
            bytes,
            fingerprint(&jobs, &parallel.results),
            "aggregated results changed with --jobs {workers}"
        );
    }
}

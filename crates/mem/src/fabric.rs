//! The full memory hierarchy: per-SM L1s (+ optional prefetch buffer),
//! address-interleaved L2 partitions, and per-partition DRAM.
//!
//! Clients (the SM load/store units, DAC's Address Expansion Unit, and the
//! MTA prefetcher) submit [`MemRequest`]s tagged with a [`Client`] id and an
//! opaque token; completed loads come back as [`MemResponse`]s through
//! [`MemoryFabric::drain_responses`]. The fabric owns all timing: structural
//! stalls are reported synchronously as [`AccessOutcome::Stall`] so callers
//! can retry (that retry *is* the stall).

use crate::cache::{Cache, CacheOutcome};
use crate::config::MemConfig;
use crate::dram::{DramPartition, DramRequest};
use crate::fxhash::FxHashMap;
use crate::mshr::{MshrTable, MshrTarget};
use crate::stats::MemStats;
use simt_trace::{NullTracer, StallCause, TraceClient, TraceEvent, TraceReqKind, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Who issued a request (routes the response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Client {
    /// The SM's load/store unit (ordinary warp accesses).
    Lsu,
    /// DAC's Address Expansion Unit (early, locking requests).
    Dac,
    /// The MTA prefetcher.
    Mta,
}

impl Client {
    /// The tracing mirror of this client id.
    pub fn trace(self) -> TraceClient {
        match self {
            Client::Lsu => TraceClient::Lsu,
            Client::Dac => TraceClient::Dac,
            Client::Mta => TraceClient::Mta,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Client::Lsu => 0,
            Client::Dac => 1,
            Client::Mta => 2,
        }
    }

    fn from_u8(v: u8) -> Client {
        match v {
            0 => Client::Lsu,
            1 => Client::Dac,
            _ => Client::Mta,
        }
    }
}

/// Request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Demand load; response delivered when data is L1-resident.
    Load,
    /// Store (write-through at L1, write-back at L2); no response.
    Store,
    /// Atomic RMW — bypasses L1, serviced at L2/DRAM; response carries
    /// completion (functional value is computed by the SM at issue).
    Atomic,
    /// DAC early load: like `Load` but locks the L1 line on fill so it
    /// cannot be evicted before the demand access (paper §4.2).
    PrefetchLock,
    /// MTA speculative prefetch: fills the dedicated prefetch buffer; no
    /// warp is waiting on it.
    Prefetch,
}

impl ReqKind {
    /// The tracing mirror of this request kind.
    pub fn trace(self) -> TraceReqKind {
        match self {
            ReqKind::Load => TraceReqKind::Load,
            ReqKind::Store => TraceReqKind::Store,
            ReqKind::Atomic => TraceReqKind::Atomic,
            ReqKind::PrefetchLock => TraceReqKind::PrefetchLock,
            ReqKind::Prefetch => TraceReqKind::Prefetch,
        }
    }
}

/// A memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing SM.
    pub sm: usize,
    /// Cache-line-aligned address.
    pub line: u64,
    /// Kind of access.
    pub kind: ReqKind,
    /// Issuing client.
    pub client: Client,
    /// Client-defined token, returned in the response.
    pub token: u64,
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// SM the response belongs to.
    pub sm: usize,
    /// Line address.
    pub line: u64,
    /// Client that issued the request.
    pub client: Client,
    /// Token from the request.
    pub token: u64,
}

/// Why a request could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// L1 MSHR table full.
    MshrFull,
    /// Interconnect/partition queue full.
    QueueFull,
    /// DAC lock budget (`ways - 1` locked lines per set) exhausted.
    LockBudget,
}

impl StallReason {
    /// The tracing mirror of this port-stall reason.
    pub fn trace(self) -> StallCause {
        match self {
            StallReason::MshrFull => StallCause::MshrFull,
            StallReason::QueueFull => StallCause::QueueFull,
            StallReason::LockBudget => StallCause::LockBudget,
        }
    }
}

/// Result of submitting a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Request accepted; a response will arrive later (loads/atomics) or
    /// the request is fire-and-forget (stores/prefetches).
    Accepted,
    /// Structural stall; retry next cycle.
    Stall(StallReason),
}

#[derive(Debug, Clone, Copy)]
enum PartEvent {
    /// A line fill heading to an SM (goes through the MSHR release path).
    Fill { line: u64 },
    /// A direct response (atomics — no L1 fill).
    Direct(MemResponse),
}

#[derive(Debug)]
struct Partition {
    inq: VecDeque<(u64, MemRequest)>,
    l2: Cache,
    dram: DramPartition,
    /// Outstanding DRAM reads by id. FxHashMap: hot path, never iterated.
    inflight: FxHashMap<u64, MemRequest>,
    next_id: u64,
    /// Events generated this cycle, headed for SM ports: `(sm, ready_at,
    /// event)` in generation order. Ports merge these in partition-index
    /// order after every partition has cycled, which decouples partitions
    /// from ports (they can tick on different worker threads) while
    /// reproducing the serial delivery order exactly. Cleared at the start
    /// of the partition's next cycle; entries are *copied* out by the
    /// ports, so the stale buffer is never read again.
    outbox: Vec<(usize, u64, PartEvent)>,
    /// Dirty L2 evictions written back to DRAM (partition-local slice of
    /// [`MemStats::writebacks`]).
    writebacks: u64,
    /// Partition-local slice of the fast-forward progress counter.
    progress: u64,
}

#[derive(Debug)]
struct SmPort {
    l1: Cache,
    mshr: MshrTable,
    pbuf: Option<Cache>,
    /// (ready_cycle, seq, ord, slot): fill/direct events from partitions.
    /// Payloads live in a slab (`Vec<Option<..>>` + free list) instead of a
    /// `HashMap` keyed by event id. Slab slots are reused, so the heap
    /// carries a monotone `ord` as the tiebreaker — several ready events
    /// can share one `(at, seq)` (an MSHR fill releasing merged targets)
    /// and must drain in insertion order.
    incoming: BinaryHeap<Reverse<(u64, u64, usize, usize)>>,
    incoming_slab: Vec<Option<PartEvent>>,
    incoming_free: Vec<usize>,
    next_ev: usize,
    /// Responses ready for the client to drain.
    ready: BinaryHeap<Reverse<(u64, u64, usize, usize)>>,
    ready_slab: Vec<Option<MemResponse>>,
    ready_free: Vec<usize>,
    /// Port-local sequence counter. `seq` only ever tie-breaks within this
    /// port's two heaps, so a per-port counter reproduces the serial
    /// ordering exactly as long as values are assigned in the serial
    /// relative order (partition events in partition-index order first,
    /// then client accesses in SM-index order).
    seq: u64,
    /// Fills delivered into the prefetch buffer (port-local slice of
    /// [`MemStats::pbuf_fills`]).
    pbuf_fills: u64,
    /// Port-local slice of the fast-forward progress counter.
    progress: u64,
}

impl SmPort {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push_incoming(&mut self, at: u64, seq: u64, ev: PartEvent) {
        let ord = self.next_ev;
        self.next_ev += 1;
        let slot = match self.incoming_free.pop() {
            Some(i) => {
                self.incoming_slab[i] = Some(ev);
                i
            }
            None => {
                self.incoming_slab.push(Some(ev));
                self.incoming_slab.len() - 1
            }
        };
        self.incoming.push(Reverse((at, seq, ord, slot)));
    }

    fn push_ready(&mut self, at: u64, seq: u64, r: MemResponse) {
        let ord = self.next_ev;
        self.next_ev += 1;
        let slot = match self.ready_free.pop() {
            Some(i) => {
                self.ready_slab[i] = Some(r);
                i
            }
            None => {
                self.ready_slab.push(Some(r));
                self.ready_slab.len() - 1
            }
        };
        self.ready.push(Reverse((at, seq, ord, slot)));
    }

    /// Pull this port's events out of every partition outbox, scanning
    /// partitions in index order so `seq` assignment matches the serial
    /// delivery order.
    fn merge_outboxes<'p>(&mut self, sm: usize, parts: impl Iterator<Item = &'p Partition>) {
        for part in parts {
            for &(t_sm, at, ev) in &part.outbox {
                if t_sm == sm {
                    let seq = self.next_seq();
                    self.push_incoming(at, seq, ev);
                }
            }
        }
    }

    /// Process matured incoming events: MSHR releases, L1/prefetch-buffer
    /// fills, and direct responses. Entirely port-local.
    fn incoming_cycle(&mut self, sm: usize, now: u64, tracer: &mut dyn Tracer) {
        loop {
            let pop = matches!(self.incoming.peek(),
                Some(&Reverse((at, _, _, _))) if at <= now);
            if !pop {
                break;
            }
            let Reverse((_, seq, _, slot)) = self.incoming.pop().unwrap();
            let ev = self.incoming_slab[slot].take().unwrap();
            self.incoming_free.push(slot);
            self.progress += 1;
            match ev {
                PartEvent::Direct(resp) => {
                    self.push_ready(now, seq, resp);
                }
                PartEvent::Fill { line, .. } => {
                    if tracer.enabled() {
                        tracer.emit(
                            now,
                            TraceEvent::Fill {
                                sm: sm as u32,
                                line,
                            },
                        );
                    }
                    let targets = self.mshr.release(line);
                    let locks = self.l1.pending_locks_for(line);
                    let to_l1 = locks > 0
                        || targets
                            .iter()
                            .any(|t| Client::from_u8(t.client) != Client::Mta);
                    if to_l1 {
                        let _ = self.l1.fill(line, locks);
                    } else if let Some(pbuf) = self.pbuf.as_mut() {
                        let _ = pbuf.fill(line, 0);
                        self.pbuf_fills += 1;
                    } else {
                        // No prefetch buffer configured: fill L1 anyway.
                        let _ = self.l1.fill(line, 0);
                    }
                    for t in targets {
                        let client = Client::from_u8(t.client);
                        if client == Client::Mta {
                            continue; // prefetches need no response
                        }
                        self.push_ready(
                            now,
                            seq,
                            MemResponse {
                                sm,
                                line,
                                client,
                                token: t.token,
                            },
                        );
                    }
                }
            }
        }
    }
}

impl Partition {
    /// Start a new cycle: drop last cycle's outbox (its entries were copied
    /// into the ports at the end of that cycle).
    fn begin_cycle(&mut self) {
        self.outbox.clear();
    }

    /// Advance this partition one cycle: service the input-queue head, run
    /// DRAM, and route completions into the outbox. Touches only
    /// partition-local state, so partitions can cycle concurrently.
    fn cycle(&mut self, cfg: &MemConfig, p: usize, now: u64, tracer: &mut dyn Tracer) {
        let l2_latency = cfg.l2_latency;
        let icnt = cfg.icnt_latency;
        // 1. Service the head of the input queue.
        let pop = matches!(self.inq.front(), Some(&(arrive, _)) if arrive <= now);
        if pop {
            let (_, req) = self.inq.front().copied().unwrap();
            let mut l2_hit = false;
            let proceed = match req.kind {
                ReqKind::Store => {
                    match self.l2.access(req.line, true) {
                        CacheOutcome::Hit => {
                            l2_hit = true;
                            true // dirty in L2, done
                        }
                        CacheOutcome::Miss => {
                            // Write-no-allocate: forward to DRAM if room.
                            if self.dram.can_accept() {
                                let id = self.next_id;
                                self.next_id += 1;
                                self.dram.push(DramRequest {
                                    line: req.line,
                                    write: true,
                                    id,
                                });
                                true
                            } else {
                                false
                            }
                        }
                    }
                }
                _ => {
                    let is_atomic = req.kind == ReqKind::Atomic;
                    let hit = self.l2.access(req.line, is_atomic) == CacheOutcome::Hit;
                    l2_hit = hit;
                    if hit {
                        let at = now + l2_latency + icnt;
                        let ev = if is_atomic {
                            PartEvent::Direct(MemResponse {
                                sm: req.sm,
                                line: req.line,
                                client: req.client,
                                token: req.token,
                            })
                        } else {
                            PartEvent::Fill { line: req.line }
                        };
                        self.outbox.push((req.sm, at, ev));
                        true
                    } else if self.dram.can_accept() {
                        let id = self.next_id;
                        self.next_id += 1;
                        self.inflight.insert(id, req);
                        self.dram.push(DramRequest {
                            line: req.line,
                            write: false,
                            id,
                        });
                        true
                    } else {
                        false
                    }
                }
            };
            if proceed {
                self.inq.pop_front();
                self.progress += 1;
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::L2Access {
                            partition: p as u32,
                            line: req.line,
                            hit: l2_hit,
                            client: req.client.trace(),
                        },
                    );
                }
            }
        }
        // 2. DRAM. A scheduling decision (serviced bump) is progress.
        let serviced_before = self.dram.serviced;
        self.dram.cycle_traced(now, p, tracer);
        self.progress += self.dram.serviced - serviced_before;
        // 3. Completed DRAM reads → fill L2, route to SM.
        while let Some(done) = self.dram.pop_done(now) {
            self.progress += 1;
            let req = match self.inflight.remove(&done.id) {
                Some(r) => r,
                None => continue,
            };
            // Fill L2 (atomics dirty the line).
            let dirty_evict = self.l2.fill(req.line, 0);
            if req.kind == ReqKind::Atomic {
                let _ = self.l2.access(req.line, true);
            }
            if let Some(wb_line) = dirty_evict {
                self.writebacks += 1;
                if self.dram.can_accept() {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.dram.push(DramRequest {
                        line: wb_line,
                        write: true,
                        id,
                    });
                }
            }
            let at = now + l2_latency + icnt;
            let ev = if req.kind == ReqKind::Atomic {
                PartEvent::Direct(MemResponse {
                    sm: req.sm,
                    line: req.line,
                    client: req.client,
                    token: req.token,
                })
            } else {
                PartEvent::Fill { line: req.line }
            };
            self.outbox.push((req.sm, at, ev));
        }
    }
}

/// The complete memory hierarchy for `num_sms` SMs.
#[derive(Debug)]
pub struct MemoryFabric {
    cfg: MemConfig,
    sms: Vec<SmPort>,
    parts: Vec<Partition>,
    stats_extra: MemStats,
    /// Acceptance cycle of in-flight traced requests, keyed by
    /// `(sm, client, token)`. Populated only while a tracer is enabled
    /// (pure observability — never read by timing code).
    trace_t0: FxHashMap<(usize, u8, u64), u64>,
    /// Monotone event counter for the idle-cycle fast-forward probe: bumped
    /// on every accepted request, every event pop (partition input queue,
    /// DRAM completions, SM incoming, response drain), and every DRAM
    /// scheduling decision (`serviced` delta, folded in during the
    /// partition cycle). Deliberately not a [`MemStats`] field — it must
    /// never reach artifacts.
    progress: u64,
}

impl MemoryFabric {
    /// Build the hierarchy from a configuration.
    pub fn new(cfg: MemConfig, num_sms: usize) -> Self {
        let sms = (0..num_sms)
            .map(|_| SmPort {
                l1: Cache::new(cfg.l1_size, cfg.l1_ways, cfg.line_bytes),
                mshr: MshrTable::new(cfg.mshr_entries, cfg.mshr_merge),
                pbuf: (cfg.prefetch_buffer_size > 0)
                    .then(|| Cache::new(cfg.prefetch_buffer_size, 8, cfg.line_bytes)),
                incoming: BinaryHeap::new(),
                incoming_slab: Vec::new(),
                incoming_free: Vec::new(),
                next_ev: 0,
                ready: BinaryHeap::new(),
                ready_slab: Vec::new(),
                ready_free: Vec::new(),
                seq: 0,
                pbuf_fills: 0,
                progress: 0,
            })
            .collect();
        let parts = (0..cfg.num_partitions)
            .map(|_| Partition {
                inq: VecDeque::new(),
                l2: Cache::new(cfg.l2_size_per_partition, cfg.l2_ways, cfg.line_bytes),
                dram: DramPartition::new(
                    cfg.dram_banks,
                    cfg.dram_row_bytes,
                    cfg.dram_row_hit_latency,
                    cfg.dram_row_miss_latency,
                    cfg.dram_row_hit_busy,
                    cfg.dram_row_miss_busy,
                    cfg.dram_burst_cycles,
                    cfg.dram_queue,
                ),
                inflight: FxHashMap::default(),
                next_id: 0,
                outbox: Vec::new(),
                writebacks: 0,
                progress: 0,
            })
            .collect();
        MemoryFabric {
            cfg,
            sms,
            parts,
            stats_extra: MemStats::default(),
            trace_t0: FxHashMap::default(),
            progress: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Submit a request at cycle `now`.
    pub fn access(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        self.access_traced(now, req, &mut NullTracer)
    }

    /// [`MemoryFabric::access`] with request/stall events emitted into
    /// `tracer`. Accepted requests with responses also record their
    /// acceptance cycle so [`MemoryFabric::drain_responses_traced`] can
    /// report end-to-end latency.
    pub fn access_traced(
        &mut self,
        now: u64,
        req: MemRequest,
        tracer: &mut dyn Tracer,
    ) -> AccessOutcome {
        debug_assert_eq!(req.line % self.cfg.line_bytes, 0, "unaligned line");
        let out = if self.cfg.perfect {
            self.access_perfect(now, req)
        } else {
            match req.kind {
                ReqKind::Load | ReqKind::PrefetchLock => self.access_load(now, req),
                ReqKind::Store => self.access_store(now, req),
                ReqKind::Atomic => self.access_atomic(now, req),
                ReqKind::Prefetch => self.access_prefetch(now, req),
            }
        };
        if out == AccessOutcome::Accepted {
            self.progress += 1;
        }
        if tracer.enabled() {
            match out {
                AccessOutcome::Accepted => {
                    tracer.emit(
                        now,
                        TraceEvent::MemReq {
                            sm: req.sm as u32,
                            line: req.line,
                            kind: req.kind.trace(),
                            client: req.client.trace(),
                            token: req.token,
                        },
                    );
                    if req.kind.trace().has_response() {
                        self.trace_t0
                            .insert((req.sm, req.client.to_u8(), req.token), now);
                    }
                }
                AccessOutcome::Stall(reason) => tracer.emit(
                    now,
                    TraceEvent::MemStall {
                        sm: req.sm as u32,
                        line: req.line,
                        client: req.client.trace(),
                        cause: reason.trace(),
                    },
                ),
            }
        }
        out
    }

    fn access_perfect(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        let seq = self.sms[req.sm].next_seq();
        match req.kind {
            ReqKind::Store | ReqKind::Prefetch => {
                self.stats_extra.stores += (req.kind == ReqKind::Store) as u64;
            }
            _ => {
                self.stats_extra.loads += 1;
                let at = now + self.cfg.perfect_latency;
                self.sms[req.sm].push_ready(
                    at,
                    seq,
                    MemResponse {
                        sm: req.sm,
                        line: req.line,
                        client: req.client,
                        token: req.token,
                    },
                );
            }
        }
        AccessOutcome::Accepted
    }

    fn access_load(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        let lock = req.kind == ReqKind::PrefetchLock;
        let sm = req.sm;
        let seq = self.sms[sm].next_seq();
        // Probe without updating statistics: structural stalls retry this
        // call every cycle and must not inflate hit/miss counts.
        if self.sms[sm].l1.probe(req.line) {
            let _ = self.sms[sm].l1.access(req.line, false); // hit: count + LRU
            if lock {
                self.sms[sm].l1.lock_resident(req.line);
            }
            let at = now + self.cfg.l1_hit_latency;
            self.sms[sm].push_ready(
                at,
                seq,
                MemResponse {
                    sm,
                    line: req.line,
                    client: req.client,
                    token: req.token,
                },
            );
            self.stats_extra.loads += 1;
            return AccessOutcome::Accepted;
        }
        let pbuf_hit = self.sms[sm]
            .pbuf
            .as_ref()
            .map(|p| p.probe(req.line))
            .unwrap_or(false);
        if pbuf_hit {
            let _ = self.sms[sm].pbuf.as_mut().unwrap().access(req.line, false);
            self.stats_extra.pbuf_hits += 1;
            self.stats_extra.loads += 1;
            let at = now + self.cfg.prefetch_buffer_latency;
            self.sms[sm].push_ready(
                at,
                seq,
                MemResponse {
                    sm,
                    line: req.line,
                    client: req.client,
                    token: req.token,
                },
            );
            return AccessOutcome::Accepted;
        }
        // Miss: MSHR + lock budget + partition queue gates first...
        if !self.sms[sm].mshr.can_accept(req.line) {
            self.sms[sm].mshr.note_full_stall();
            return AccessOutcome::Stall(StallReason::MshrFull);
        }
        if lock && !self.sms[sm].l1.can_reserve_lock(req.line) {
            self.stats_extra.lock_budget_stalls += 1;
            return AccessOutcome::Stall(StallReason::LockBudget);
        }
        let will_forward = !self.sms[sm].mshr.contains(req.line);
        if will_forward {
            let p = self.cfg.partition_of(req.line);
            if self.parts[p].inq.len() >= self.cfg.l2_queue {
                self.stats_extra.queue_full_stalls += 1;
                return AccessOutcome::Stall(StallReason::QueueFull);
            }
            let arrive = now + self.cfg.icnt_latency;
            self.parts[p].inq.push_back((arrive, req));
        } else if req.client == Client::Lsu && self.sms[sm].mshr.first_client(req.line) == Some(2) {
            // Demand merging into an in-flight MTA prefetch: covered.
            self.stats_extra.prefetch_merged += 1;
        }
        // ...then count the miss exactly once, on acceptance.
        let _ = self.sms[sm].l1.access(req.line, false);
        self.sms[sm].mshr.allocate(
            req.line,
            MshrTarget {
                client: req.client.to_u8(),
                token: req.token,
            },
        );
        if lock {
            self.sms[sm].l1.reserve_pending_lock(req.line);
        }
        self.stats_extra.loads += 1;
        AccessOutcome::Accepted
    }

    fn access_store(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        let p = self.cfg.partition_of(req.line);
        if self.parts[p].inq.len() >= self.cfg.l2_queue {
            self.stats_extra.queue_full_stalls += 1;
            return AccessOutcome::Stall(StallReason::QueueFull);
        }
        // Write-through, no-allocate at L1 (Fermi global stores).
        let _ = self.sms[req.sm].l1.access(req.line, false);
        let arrive = now + self.cfg.icnt_latency;
        self.parts[p].inq.push_back((arrive, req));
        self.stats_extra.stores += 1;
        AccessOutcome::Accepted
    }

    fn access_atomic(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        let p = self.cfg.partition_of(req.line);
        if self.parts[p].inq.len() >= self.cfg.l2_queue {
            self.stats_extra.queue_full_stalls += 1;
            return AccessOutcome::Stall(StallReason::QueueFull);
        }
        let arrive = now + self.cfg.icnt_latency;
        self.parts[p].inq.push_back((arrive, req));
        self.stats_extra.atomics += 1;
        AccessOutcome::Accepted
    }

    fn access_prefetch(&mut self, now: u64, req: MemRequest) -> AccessOutcome {
        let sm = req.sm;
        // Drop if already resident or in flight.
        let redundant = self.sms[sm].l1.probe(req.line)
            || self.sms[sm]
                .pbuf
                .as_ref()
                .map(|p| p.probe(req.line))
                .unwrap_or(false)
            || self.sms[sm].mshr.contains(req.line);
        if redundant {
            self.stats_extra.redundant_prefetches += 1;
            return AccessOutcome::Accepted;
        }
        // Speculative prefetches must not starve demand misses: leave a
        // quarter of the MSHRs for demand traffic.
        let reserve = self.cfg.mshr_entries / 4;
        if !self.sms[sm].mshr.can_accept(req.line)
            || self.sms[sm].mshr.outstanding() + reserve >= self.cfg.mshr_entries
        {
            return AccessOutcome::Stall(StallReason::MshrFull);
        }
        let p = self.cfg.partition_of(req.line);
        // Prefetches yield to demand traffic: they enter only a
        // half-empty partition queue (keeps speculation off the critical
        // path without starving it).
        if self.parts[p].inq.len() >= self.cfg.l2_queue / 2 {
            return AccessOutcome::Stall(StallReason::QueueFull);
        }
        self.sms[sm].mshr.allocate(
            req.line,
            MshrTarget {
                client: req.client.to_u8(),
                token: req.token,
            },
        );
        let arrive = now + self.cfg.icnt_latency;
        self.parts[p].inq.push_back((arrive, req));
        AccessOutcome::Accepted
    }

    /// Advance the hierarchy one cycle.
    pub fn cycle(&mut self, now: u64) {
        self.cycle_traced(now, &mut NullTracer);
    }

    /// [`MemoryFabric::cycle`] with L2-access and SM-fill events emitted
    /// into `tracer`. Runs the same two phases the parallel runner shards
    /// across workers: every partition cycles (filling its outbox), then
    /// every port merges outbox events in partition-index order and
    /// processes matured fills — so serial and threaded runs execute
    /// identical event sequences.
    pub fn cycle_traced(&mut self, now: u64, tracer: &mut dyn Tracer) {
        // Partitions: accept one request per cycle, run DRAM, route returns.
        for p in 0..self.parts.len() {
            let part = &mut self.parts[p];
            part.begin_cycle();
            part.cycle(&self.cfg, p, now, tracer);
        }
        // SMs: merge partition events, then process matured fills.
        for sm in 0..self.sms.len() {
            let (ports, parts) = (&mut self.sms, &self.parts);
            ports[sm].merge_outboxes(sm, parts.iter());
            ports[sm].incoming_cycle(sm, now, tracer);
        }
    }

    /// Drain all responses ready for `sm` at cycle `now`.
    pub fn drain_responses(&mut self, sm: usize, now: u64) -> Vec<MemResponse> {
        self.drain_responses_traced(sm, now, &mut NullTracer)
    }

    /// [`MemoryFabric::drain_responses`] emitting one
    /// [`TraceEvent::MemResp`] per delivered response, with end-to-end
    /// latency measured from fabric acceptance (requests submitted while
    /// tracing was off report latency 0).
    pub fn drain_responses_traced(
        &mut self,
        sm: usize,
        now: u64,
        tracer: &mut dyn Tracer,
    ) -> Vec<MemResponse> {
        let mut out = Vec::new();
        self.drain_responses_into(sm, now, tracer, &mut out);
        out
    }

    /// [`MemoryFabric::drain_responses_traced`] appending into a
    /// caller-owned buffer, so the per-cycle hot path can reuse one
    /// allocation across cycles.
    pub fn drain_responses_into(
        &mut self,
        sm: usize,
        now: u64,
        tracer: &mut dyn Tracer,
        out: &mut Vec<MemResponse>,
    ) {
        self.port_view(sm)
            .drain_responses_into(sm, now, tracer, out);
    }

    /// Unlock a DAC-locked L1 line after its demand access (paper §4.2).
    pub fn unlock(&mut self, sm: usize, line: u64) {
        self.sms[sm].l1.unlock(line);
    }

    /// Is `line` resident in `sm`'s L1? (observability)
    pub fn probe_l1(&self, sm: usize, line: u64) -> bool {
        self.sms[sm].l1.probe(line)
    }

    /// Number of locked lines in `sm`'s L1 (observability).
    pub fn locked_lines(&self, sm: usize) -> usize {
        self.sms[sm].l1.locked_lines()
    }

    /// Any work still in flight anywhere in the hierarchy?
    pub fn quiescent(&self) -> bool {
        self.sms
            .iter()
            .all(|s| s.incoming.is_empty() && s.ready.is_empty() && s.mshr.outstanding() == 0)
            && self
                .parts
                .iter()
                .all(|p| p.inq.is_empty() && p.inflight.is_empty() && p.dram.pending() == 0)
    }

    /// Aggregate statistics from every component.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats_extra.clone();
        for port in &self.sms {
            s.l1_hits += port.l1.hits;
            s.l1_misses += port.l1.misses;
            s.mshr_full_stalls += port.mshr.full_stalls;
            s.pbuf_fills += port.pbuf_fills;
            if let Some(p) = &port.pbuf {
                s.pbuf_unused_evictions += p.unused_evictions;
            }
        }
        for p in &self.parts {
            s.l2_hits += p.l2.hits;
            s.l2_misses += p.l2.misses;
            s.dram_row_hits += p.dram.row_hits;
            s.dram_row_misses += p.dram.row_misses;
            s.dram_serviced += p.dram.serviced;
            s.writebacks += p.writebacks;
        }
        s
    }

    /// The two prefetch-buffer counters the MTA throttle reads
    /// (`pbuf_unused_evictions`, `pbuf_fills`), exactly as
    /// [`MemoryFabric::stats`] would report them. Both move only on the
    /// port fill path, so a snapshot taken after the fabric cycle is stable
    /// for the whole SM phase — serial or threaded.
    pub fn pbuf_stats(&self) -> (u64, u64) {
        let mut unused = self.stats_extra.pbuf_unused_evictions;
        let mut fills = self.stats_extra.pbuf_fills;
        for port in &self.sms {
            fills += port.pbuf_fills;
            if let Some(p) = &port.pbuf {
                unused += p.unused_evictions;
            }
        }
        (unused, fills)
    }

    /// Fast-forward probe: total fabric progress events so far. Two
    /// identical values across a cycle mean the hierarchy neither accepted,
    /// moved, scheduled, completed, nor delivered anything that cycle.
    pub fn progress_count(&self) -> u64 {
        let mut n = self.progress;
        for port in &self.sms {
            n += port.progress;
        }
        for p in &self.parts {
            n += p.progress;
        }
        n
    }

    /// Per-unit progress counters for deadlock diagnostics: the
    /// coordinator-side residue (accepted requests), then one entry per
    /// partition and one per SM port.
    pub fn progress_breakdown(&self) -> (u64, Vec<u64>, Vec<u64>) {
        (
            self.progress,
            self.parts.iter().map(|p| p.progress).collect(),
            self.sms.iter().map(|s| s.progress).collect(),
        )
    }

    /// Earliest cycle after `now` at which the hierarchy could act on its
    /// own: an incoming/ready event maturing, a queued partition request
    /// arriving, or DRAM finishing a transfer / freeing a bank. `u64::MAX`
    /// when fully drained. A partition-queue head with `arrive <= now` is
    /// *blocked* (its DRAM queue is full — otherwise the probe cycle would
    /// have made progress), so the DRAM wake time covers it.
    pub fn next_event_time(&self, now: u64) -> u64 {
        let mut wake = u64::MAX;
        for port in &self.sms {
            if let Some(&Reverse((at, _, _, _))) = port.incoming.peek() {
                wake = wake.min(at.max(now + 1));
            }
            if let Some(&Reverse((at, _, _, _))) = port.ready.peek() {
                wake = wake.min(at.max(now + 1));
            }
        }
        for p in &self.parts {
            if let Some(&(arrive, _)) = p.inq.front() {
                if arrive > now {
                    wake = wake.min(arrive);
                }
            }
            wake = wake.min(p.dram.next_event_time(now));
        }
        wake
    }

    /// Credit `k` skipped idle cycles to the aggregate statistics: add
    /// `k × (stats() − before)` into the fabric-level extras, field by
    /// field. `before` must be a [`MemoryFabric::stats`] snapshot taken
    /// just before the probe cycle; the only counters that move in a
    /// no-progress cycle are per-cycle stall events, which repeat exactly
    /// in every skipped cycle.
    pub fn ff_credit(&mut self, before: &MemStats, k: u64) {
        let after = self.stats();
        let extra_now = self.stats_extra.fields();
        for (((name, b), (_, a)), (_, e)) in before
            .fields()
            .into_iter()
            .zip(after.fields())
            .zip(extra_now)
        {
            debug_assert!(a >= b, "MemStats counter {name} went backwards");
            if a != b {
                let ok = self.stats_extra.set_field(name, e + (a - b) * k);
                debug_assert!(ok, "unknown MemStats field {name}");
            }
        }
    }

    /// A mutable view of one SM's port (L1, MSHR, prefetch buffer,
    /// response queues), detached from the rest of the fabric so SM ticks
    /// can run without `&mut MemoryFabric`. The serial view also carries
    /// the trace-latency map; the [`FabricGrid`] view does not (tracing
    /// forces the serial runner).
    pub fn port_view(&mut self, sm: usize) -> SmPortView<'_> {
        SmPortView {
            port: &mut self.sms[sm],
            trace_t0: &mut self.trace_t0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Raw handle for the phase-parallel runner. See [`FabricGrid`] for
    /// the aliasing contract.
    pub fn grid(&mut self) -> FabricGrid {
        FabricGrid { fabric: self }
    }

    /// Number of L2/DRAM partitions (0 for perfect memory).
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }
}

/// Raw, shareable handle over a [`MemoryFabric`] for the intra-run worker
/// pool. Each method touches exactly one partition or one SM port (plus,
/// in the port-merge phase, read-only partition outboxes), so workers
/// operating on disjoint unit indices never alias.
///
/// # Safety contract
/// Callers must uphold the phase protocol:
/// - between barriers, at most one worker touches any given unit index;
/// - [`FabricGrid::partition_cycle`] calls (mutating partitions) never
///   overlap [`FabricGrid::port_cycle`] / [`FabricGrid::port_view`] calls
///   that read partition outboxes or mutate ports;
/// - no `&mut MemoryFabric` method runs while any grid call is in flight;
/// - the fabric outlives the grid and is not moved while it exists.
pub struct FabricGrid {
    fabric: *mut MemoryFabric,
}

// Safety: the grid is only a capability to *derive* disjoint per-unit
// references under the phase protocol above; it carries no thread-affine
// state of its own.
unsafe impl Send for FabricGrid {}
unsafe impl Sync for FabricGrid {}

impl FabricGrid {
    /// Advance partition `p` one cycle (phase A). Tracing is unavailable
    /// here by design: the parallel runner only exists when tracing is off.
    ///
    /// # Safety
    /// See the [`FabricGrid`] contract; `p` must be in range and owned by
    /// the calling worker for this phase.
    pub unsafe fn partition_cycle(&self, p: usize, now: u64) {
        let cfg = &*std::ptr::addr_of!((*self.fabric).cfg);
        let parts = std::ptr::addr_of_mut!((*self.fabric).parts);
        let part = &mut *(*parts).as_mut_ptr().add(p);
        part.begin_cycle();
        part.cycle(cfg, p, now, &mut NullTracer);
    }

    /// Merge partition outboxes into port `sm` and process matured events
    /// (phase B). Partitions are read-only here.
    ///
    /// # Safety
    /// See the [`FabricGrid`] contract; `sm` must be in range and owned by
    /// the calling worker for this phase, and no partition may be mutated
    /// concurrently.
    pub unsafe fn port_cycle(&self, sm: usize, now: u64) {
        let parts = &*std::ptr::addr_of!((*self.fabric).parts);
        let ports = std::ptr::addr_of_mut!((*self.fabric).sms);
        let port = &mut *(*ports).as_mut_ptr().add(sm);
        port.merge_outboxes(sm, parts.iter());
        port.incoming_cycle(sm, now, &mut NullTracer);
    }

    /// Snapshot `(pbuf_unused_evictions, pbuf_fills)` for the MTA
    /// throttle. The counters only move on the port fill path (phase B).
    ///
    /// # Safety
    /// See the [`FabricGrid`] contract; must only be called between
    /// barriers while no worker mutates any partition or port.
    pub unsafe fn pbuf_stats(&self) -> (u64, u64) {
        (*self.fabric).pbuf_stats()
    }

    /// A port view for the SM-compute phase (drains + unlocks only).
    ///
    /// # Safety
    /// See the [`FabricGrid`] contract; `sm` must be in range and owned by
    /// the calling worker until the view is dropped.
    pub unsafe fn port_view(&self, sm: usize) -> SmPortView<'static> {
        let ports = std::ptr::addr_of_mut!((*self.fabric).sms);
        SmPortView {
            port: (*ports).as_mut_ptr().add(sm),
            trace_t0: std::ptr::null_mut(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Exclusive access to one SM's fabric port: response draining and L1
/// lock release — everything an SM tick needs from the fabric without
/// touching partitions or other ports.
pub struct SmPortView<'a> {
    port: *mut SmPort,
    /// Trace-latency map; null in grid-derived views (tracing off).
    trace_t0: *mut FxHashMap<(usize, u8, u64), u64>,
    _marker: std::marker::PhantomData<&'a mut MemoryFabric>,
}

impl SmPortView<'_> {
    /// Drain all responses ready for `sm` at cycle `now` into `out`,
    /// emitting [`TraceEvent::MemResp`] when tracing.
    pub fn drain_responses_into(
        &mut self,
        sm: usize,
        now: u64,
        tracer: &mut dyn Tracer,
        out: &mut Vec<MemResponse>,
    ) {
        let _ = sm;
        let port = unsafe { &mut *self.port };
        let start = out.len();
        loop {
            let pop = matches!(port.ready.peek(),
                Some(&Reverse((at, _, _, _))) if at <= now);
            if !pop {
                break;
            }
            let Reverse((_, _, _, slot)) = port.ready.pop().unwrap();
            out.push(port.ready_slab[slot].take().unwrap());
            port.ready_free.push(slot);
            port.progress += 1;
        }
        if tracer.enabled() {
            let t0map = unsafe { self.trace_t0.as_mut() };
            for r in &out[start..] {
                let t0 = t0map
                    .as_ref()
                    .and_then(|m| m.get(&(r.sm, r.client.to_u8(), r.token)).copied())
                    .unwrap_or(now);
                tracer.emit(
                    now,
                    TraceEvent::MemResp {
                        sm: r.sm as u32,
                        line: r.line,
                        client: r.client.trace(),
                        token: r.token,
                        latency: now - t0,
                    },
                );
            }
            if let Some(m) = t0map {
                for r in &out[start..] {
                    m.remove(&(r.sm, r.client.to_u8(), r.token));
                }
            }
        }
    }

    /// Unlock a DAC-locked L1 line after its demand access (paper §4.2).
    pub fn unlock(&mut self, line: u64) {
        unsafe { (*self.port).l1.unlock(line) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> MemoryFabric {
        MemoryFabric::new(MemConfig::gtx480(), 2)
    }

    fn load(sm: usize, line: u64, token: u64) -> MemRequest {
        MemRequest {
            sm,
            line,
            kind: ReqKind::Load,
            client: Client::Lsu,
            token,
        }
    }

    /// Run the fabric until a response for `sm` appears or `limit` cycles.
    fn run_until_response(
        f: &mut MemoryFabric,
        sm: usize,
        start: u64,
        limit: u64,
    ) -> (u64, Vec<MemResponse>) {
        for t in start..start + limit {
            f.cycle(t);
            let r = f.drain_responses(sm, t);
            if !r.is_empty() {
                return (t, r);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn cold_load_misses_to_dram_and_returns() {
        let mut f = fabric();
        assert_eq!(f.access(0, load(0, 0, 42)), AccessOutcome::Accepted);
        let (t, resps) = run_until_response(&mut f, 0, 0, 2000);
        assert_eq!(resps[0].token, 42);
        // Cold miss must pay icnt + L2 + DRAM row miss + return.
        assert!(t > 200, "cold miss returned unrealistically fast: {t}");
        assert!(f.probe_l1(0, 0), "line should be filled in L1");
        let s = f.stats();
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn second_load_hits_l1_fast() {
        let mut f = fabric();
        f.access(0, load(0, 0, 1));
        let (t0, _) = run_until_response(&mut f, 0, 0, 2000);
        f.access(t0 + 1, load(0, 0, 2));
        let (t1, resps) = run_until_response(&mut f, 0, t0 + 1, 100);
        assert_eq!(resps[0].token, 2);
        assert!(t1 - t0 <= 29, "L1 hit latency too long: {}", t1 - t0);
        assert_eq!(f.stats().l1_hits, 1);
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut f = fabric();
        f.access(0, load(0, 0, 1));
        f.access(0, load(0, 0, 2));
        // Both come back together in one fill.
        let (_, resps) = run_until_response(&mut f, 0, 0, 2000);
        let mut tokens: Vec<u64> = resps.iter().map(|r| r.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![1, 2]);
        assert_eq!(f.stats().l2_misses, 1, "merged miss must reach L2 once");
    }

    #[test]
    fn prefetch_lock_protects_line() {
        let mut f = fabric();
        let req = MemRequest {
            sm: 0,
            line: 0,
            kind: ReqKind::PrefetchLock,
            client: Client::Dac,
            token: 7,
        };
        assert_eq!(f.access(0, req), AccessOutcome::Accepted);
        let (t, resps) = run_until_response(&mut f, 0, 0, 2000);
        assert_eq!(resps[0].client, Client::Dac);
        assert_eq!(f.locked_lines(0), 1);
        // Thrash the set: lines mapping to the same set are 96 sets apart.
        let stride = 128 * 96;
        for i in 1..=8u64 {
            f.access(t + i, load(0, i * stride, 100 + i));
        }
        for now in t + 9..t + 5009 {
            f.cycle(now);
            f.drain_responses(0, now);
            if f.quiescent() {
                break;
            }
        }
        assert!(f.probe_l1(0, 0), "locked line was evicted");
        f.unlock(0, 0);
        assert_eq!(f.locked_lines(0), 0);
    }

    #[test]
    fn lock_budget_stalls_at_ways_minus_one() {
        let mut f = fabric();
        let stride = 128 * 96; // same-set stride (96 sets)
        let mut accepted = 0;
        for i in 0..4u64 {
            let req = MemRequest {
                sm: 0,
                line: i * stride,
                kind: ReqKind::PrefetchLock,
                client: Client::Dac,
                token: i,
            };
            if f.access(0, req) == AccessOutcome::Accepted {
                accepted += 1;
            }
        }
        // 4-way L1 ⇒ at most 3 locked lines per set.
        assert_eq!(accepted, 3);
        assert_eq!(f.stats().lock_budget_stalls, 1);
    }

    #[test]
    fn stores_are_fire_and_forget() {
        let mut f = fabric();
        let st = MemRequest {
            sm: 0,
            line: 128,
            kind: ReqKind::Store,
            client: Client::Lsu,
            token: 0,
        };
        assert_eq!(f.access(0, st), AccessOutcome::Accepted);
        let mut now = 1;
        while !f.quiescent() && now < 3000 {
            f.cycle(now);
            assert!(f.drain_responses(0, now).is_empty());
            now += 1;
        }
        assert!(f.quiescent());
        assert_eq!(f.stats().stores, 1);
    }

    #[test]
    fn atomics_round_trip_without_l1_fill() {
        let mut f = fabric();
        let at = MemRequest {
            sm: 1,
            line: 256,
            kind: ReqKind::Atomic,
            client: Client::Lsu,
            token: 5,
        };
        assert_eq!(f.access(0, at), AccessOutcome::Accepted);
        let (_, resps) = run_until_response(&mut f, 1, 0, 3000);
        assert_eq!(resps[0].token, 5);
        assert!(!f.probe_l1(1, 256), "atomics must not fill L1");
        assert_eq!(f.stats().atomics, 1);
    }

    #[test]
    fn prefetch_fills_pbuf_and_demand_hits_it() {
        let mut f = MemoryFabric::new(MemConfig::gtx480_with_prefetch_buffer(), 1);
        let pf = MemRequest {
            sm: 0,
            line: 512,
            kind: ReqKind::Prefetch,
            client: Client::Mta,
            token: 0,
        };
        assert_eq!(f.access(0, pf), AccessOutcome::Accepted);
        let mut now = 1;
        while !f.quiescent() && now < 3000 {
            f.cycle(now);
            f.drain_responses(0, now);
            now += 1;
        }
        assert_eq!(f.stats().pbuf_fills, 1);
        assert!(!f.probe_l1(0, 512));
        // Demand load now hits the prefetch buffer.
        f.access(now, load(0, 512, 9));
        let (t, resps) = run_until_response(&mut f, 0, now, 100);
        assert_eq!(resps[0].token, 9);
        assert!(t - now <= 29);
        assert_eq!(f.stats().pbuf_hits, 1);
    }

    #[test]
    fn prefetch_merged_with_demand_fills_l1() {
        let mut f = MemoryFabric::new(MemConfig::gtx480_with_prefetch_buffer(), 1);
        let pf = MemRequest {
            sm: 0,
            line: 512,
            kind: ReqKind::Prefetch,
            client: Client::Mta,
            token: 0,
        };
        f.access(0, pf);
        // Demand for the same line while prefetch is in flight merges and
        // upgrades the fill destination to L1.
        f.access(1, load(0, 512, 3));
        let (_, resps) = run_until_response(&mut f, 0, 1, 3000);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].token, 3);
        assert!(f.probe_l1(0, 512));
    }

    #[test]
    fn redundant_prefetch_dropped() {
        let mut f = MemoryFabric::new(MemConfig::gtx480_with_prefetch_buffer(), 1);
        f.access(0, load(0, 0, 1));
        let pf = MemRequest {
            sm: 0,
            line: 0,
            kind: ReqKind::Prefetch,
            client: Client::Mta,
            token: 0,
        };
        assert_eq!(f.access(0, pf), AccessOutcome::Accepted);
        assert_eq!(f.stats().redundant_prefetches, 1);
    }

    #[test]
    fn perfect_memory_is_flat_and_fast() {
        let mut f = MemoryFabric::new(MemConfig::perfect(), 1);
        f.access(0, load(0, 0, 1));
        f.access(0, load(0, 128 * 999, 2));
        f.cycle(1);
        let resps = f.drain_responses(0, 1);
        assert_eq!(resps.len(), 2);
    }

    #[test]
    fn mshr_full_stalls_reported() {
        let mut cfg = MemConfig::gtx480();
        cfg.mshr_entries = 1;
        let mut f = MemoryFabric::new(cfg, 1);
        assert_eq!(f.access(0, load(0, 0, 1)), AccessOutcome::Accepted);
        assert_eq!(
            f.access(0, load(0, 128, 2)),
            AccessOutcome::Stall(StallReason::MshrFull)
        );
        assert!(f.stats().mshr_full_stalls >= 1);
    }

    #[test]
    fn streaming_throughput_bounded_by_dram_bus() {
        // 6 partitions × one 128 B line per 4 cycles ⇒ ~192 B/cycle max.
        let mut f = fabric();
        let n = 240u64;
        let mut issued = 0;
        let mut now = 0u64;
        let mut got = 0;
        while got < n && now < 100_000 {
            if issued < n {
                let line = 128 * issued;
                if f.access(now, load(0, line, issued)) == AccessOutcome::Accepted {
                    issued += 1;
                }
            }
            f.cycle(now);
            got += f.drain_responses(0, now).len() as u64;
            now += 1;
        }
        assert_eq!(got, n);
        // 240 lines × 4 cycles / 6 partitions = 160 cycles of pure bus time;
        // with queueing it must take comfortably longer than that.
        assert!(now > 160, "finished impossibly fast: {now}");
    }
}

//! Runtime affine values: single tuples, divergent tuple sets, and
//! predicate vectors, as held by the affine engine's register file.

use crate::tuple::AffineTuple;

/// Maximum tuples in a divergent set (paper §4.6: at most 2 divergent
/// conditions ⇒ 4 tuples).
pub const MAX_DIVERGENT_TUPLES: usize = 4;

/// A divergent affine value: up to four tuples plus a per-(warp, lane)
/// selector recorded when the diverging definitions executed (§4.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergentVal {
    /// The candidate tuples.
    pub tuples: Vec<AffineTuple>,
    /// `select[warp][lane]` = index into `tuples` for that thread.
    pub select: Vec<[u8; 32]>,
}

/// The value of one affine-engine register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineVal {
    /// A single tuple (covers scalars: zero offsets).
    Tuple(AffineTuple),
    /// Divergent tuple set (§4.6).
    Divergent(DivergentVal),
}

impl AffineVal {
    /// A scalar value.
    pub fn scalar(v: u64) -> Self {
        AffineVal::Tuple(AffineTuple::scalar(v))
    }

    /// Evaluate for the thread at `(warp, lane)` with coordinates `t`.
    pub fn eval(&self, warp: usize, lane: usize, t: (u32, u32, u32)) -> u64 {
        match self {
            AffineVal::Tuple(tp) => tp.eval(t),
            AffineVal::Divergent(d) => {
                let idx = d.select[warp][lane] as usize;
                d.tuples[idx].eval(t)
            }
        }
    }

    /// Number of tuples this value carries.
    pub fn tuple_count(&self) -> usize {
        match self {
            AffineVal::Tuple(_) => 1,
            AffineVal::Divergent(d) => d.tuples.len(),
        }
    }

    /// The single tuple, if not divergent.
    pub fn as_tuple(&self) -> Option<&AffineTuple> {
        match self {
            AffineVal::Tuple(t) => Some(t),
            AffineVal::Divergent(_) => None,
        }
    }

    /// Merge a newly computed tuple written under `mask` (per warp) into an
    /// existing value, producing a divergent value when lanes disagree —
    /// this is how control-flow-divergent definitions accumulate (§4.6).
    ///
    /// `num_warps` is the CTA's warp count; `masks[w]` are the lanes that
    /// received `new`; `exist[w]` are the lanes that hold live threads (the
    /// CTA's launch masks — the last warp of a ragged block is partial).
    /// Lanes outside `exist` carry no state: a write covering every
    /// existing lane replaces the value outright, and only existing lanes
    /// keep tuples alive. Tuples no longer referenced by any existing lane
    /// are compacted away, so stale definitions never count against the
    /// hardware tuple budget.
    ///
    /// Returns `None` if the merge would exceed [`MAX_DIVERGENT_TUPLES`]
    /// (the compiler's two-condition limit guarantees this cannot happen
    /// for decoupled code).
    pub fn merge_masked(
        old: Option<&AffineVal>,
        new: AffineTuple,
        masks: &[u32],
        exist: &[u32],
        num_warps: usize,
    ) -> Option<AffineVal> {
        let ex = |w: usize| exist.get(w).copied().unwrap_or(u32::MAX);
        let full = (0..num_warps).all(|w| masks.get(w).copied().unwrap_or(0) & ex(w) == ex(w));
        if full || old.is_none() {
            return Some(AffineVal::Tuple(new));
        }
        let old = old.unwrap();
        // Build the divergent set starting from the old value.
        let (mut tuples, mut select) = match old {
            AffineVal::Tuple(t) => (vec![*t], vec![[0u8; 32]; num_warps]),
            AffineVal::Divergent(d) => (d.tuples.clone(), d.select.clone()),
        };
        let new_idx = match tuples.iter().position(|t| *t == new) {
            Some(i) => i,
            None => {
                tuples.push(new);
                tuples.len() - 1
            }
        };
        for (w, sel) in select.iter_mut().enumerate().take(num_warps) {
            let m = masks.get(w).copied().unwrap_or(0);
            for (lane, s) in sel.iter_mut().enumerate() {
                if m & (1 << lane) != 0 {
                    *s = new_idx as u8;
                }
            }
        }
        // Compact: keep only tuples an existing lane still references, in
        // first-reference order, and remap the selectors. Ghost lanes are
        // repointed at tuple 0 so every selector stays in range for callers
        // that sweep all 32 lanes.
        let mut remap = vec![u8::MAX; tuples.len()];
        let mut kept: Vec<AffineTuple> = Vec::new();
        for (w, sel) in select.iter_mut().enumerate().take(num_warps) {
            let e = ex(w);
            for (lane, s) in sel.iter_mut().enumerate() {
                if e & (1 << lane) == 0 {
                    continue;
                }
                let t = *s as usize;
                if remap[t] == u8::MAX {
                    remap[t] = kept.len() as u8;
                    kept.push(tuples[t]);
                }
                *s = remap[t];
            }
        }
        for (w, sel) in select.iter_mut().enumerate().take(num_warps) {
            let e = ex(w);
            for (lane, s) in sel.iter_mut().enumerate() {
                if e & (1 << lane) == 0 {
                    *s = 0;
                }
            }
        }
        match kept.len() {
            0 => Some(AffineVal::Tuple(new)),
            1 => Some(AffineVal::Tuple(kept[0])),
            n if n > MAX_DIVERGENT_TUPLES => None,
            _ => Some(AffineVal::Divergent(DivergentVal {
                tuples: kept,
                select,
            })),
        }
    }
}

/// The value of one affine-engine predicate register: uniform across the
/// CTA, or one bit vector per warp (produced by the PEU, §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredVal {
    /// Same outcome for every thread of the CTA.
    Uniform(bool),
    /// Per-warp 32-bit lane masks.
    PerWarp(Vec<u32>),
}

impl PredVal {
    /// The lane mask of `warp`.
    pub fn warp_bits(&self, warp: usize) -> u32 {
        match self {
            PredVal::Uniform(true) => u32::MAX,
            PredVal::Uniform(false) => 0,
            PredVal::PerWarp(v) => v.get(warp).copied().unwrap_or(0),
        }
    }

    /// Is the predicate uniform across the whole CTA?
    pub fn is_uniform(&self) -> bool {
        match self {
            PredVal::Uniform(_) => true,
            PredVal::PerWarp(v) => v.iter().all(|&m| m == 0) || v.iter().all(|&m| m == u32::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(base: i64, off: i64) -> AffineTuple {
        AffineTuple {
            base,
            off: [off, 0, 0],
            mod_ext: None,
        }
    }

    #[test]
    fn full_mask_write_replaces() {
        let old = AffineVal::Tuple(tup(1, 1));
        let v = AffineVal::merge_masked(
            Some(&old),
            tup(2, 2),
            &[u32::MAX, u32::MAX],
            &[u32::MAX; 2],
            2,
        )
        .unwrap();
        assert_eq!(v, AffineVal::Tuple(tup(2, 2)));
    }

    #[test]
    fn partial_mask_diverges_and_selects() {
        let old = AffineVal::Tuple(tup(0, 4));
        // Lanes 0..16 of warp 0 get the new tuple (0, 0).
        let v =
            AffineVal::merge_masked(Some(&old), tup(0, 0), &[0x0000_FFFF], &[u32::MAX], 1).unwrap();
        assert_eq!(v.tuple_count(), 2);
        assert_eq!(v.eval(0, 3, (3, 0, 0)), 0); // new tuple
        assert_eq!(v.eval(0, 20, (20, 0, 0)), 80); // old tuple: 20*4
    }

    #[test]
    fn merge_same_tuple_stays_single() {
        let old = AffineVal::Tuple(tup(7, 0));
        let v = AffineVal::merge_masked(Some(&old), tup(7, 0), &[0xFF], &[u32::MAX], 1).unwrap();
        assert_eq!(v, AffineVal::Tuple(tup(7, 0)));
    }

    #[test]
    fn overwrite_all_selected_collapses() {
        let old = AffineVal::Tuple(tup(1, 1));
        let d =
            AffineVal::merge_masked(Some(&old), tup(2, 2), &[0x0000_FFFF], &[u32::MAX], 1).unwrap();
        assert_eq!(d.tuple_count(), 2);
        // Now overwrite the *other* half with the same new tuple — every
        // lane selects tuple 2, so the value collapses back to a single
        // tuple.
        let v =
            AffineVal::merge_masked(Some(&d), tup(2, 2), &[0xFFFF_0000], &[u32::MAX], 1).unwrap();
        assert_eq!(v, AffineVal::Tuple(tup(2, 2)));
    }

    #[test]
    fn exceeding_four_tuples_fails() {
        let mut v = AffineVal::Tuple(tup(0, 0));
        for i in 1..4 {
            v = AffineVal::merge_masked(Some(&v), tup(i, 0), &[1 << i], &[u32::MAX], 1).unwrap();
        }
        assert_eq!(v.tuple_count(), 4);
        assert!(AffineVal::merge_masked(Some(&v), tup(99, 0), &[1 << 5], &[u32::MAX], 1).is_none());
    }

    /// A CTA whose last warp is partial (e.g. 48 threads → exist 0xFFFF):
    /// a write covering every *existing* lane is a full replacement, and
    /// repeated uniform redefinitions (a counted loop's induction variable)
    /// never accumulate tuples from ghost lanes.
    #[test]
    fn partial_warp_uniform_writes_stay_single() {
        let exist = [u32::MAX, 0x0000_FFFF];
        let mut v = AffineVal::Tuple(tup(0, 0));
        for i in 1..10 {
            v = AffineVal::merge_masked(Some(&v), tup(i, 0), &[u32::MAX, 0x0000_FFFF], &exist, 2)
                .unwrap();
            assert_eq!(v, AffineVal::Tuple(tup(i, 0)), "iteration {i}");
        }
    }

    /// Tuples no longer referenced by any existing lane are compacted away
    /// instead of counting against the budget forever.
    #[test]
    fn overwritten_tuples_are_compacted() {
        let exist = [u32::MAX];
        let mut v = AffineVal::Tuple(tup(0, 0));
        // Cycle many distinct definitions over the two halves of the warp:
        // at any moment only two tuples are live.
        for i in 1..32 {
            let mask = if i % 2 == 0 { 0x0000_FFFF } else { 0xFFFF_0000 };
            v = AffineVal::merge_masked(Some(&v), tup(i, 0), &[mask], &exist, 1).unwrap();
            assert!(v.tuple_count() <= 2, "iteration {i}: {:?}", v.tuple_count());
        }
    }

    /// Ghost-lane selectors stay in range after compaction.
    #[test]
    fn ghost_lanes_select_in_range() {
        let exist = [0x0000_00FF];
        let old = AffineVal::Tuple(tup(1, 1));
        let v = AffineVal::merge_masked(Some(&old), tup(2, 0), &[0x0F], &exist, 1).unwrap();
        // Sweeping all 32 lanes (as the engine's PEU does) must not panic.
        for lane in 0..32 {
            v.eval(0, lane, (lane as u32, 0, 0));
        }
    }

    #[test]
    fn pred_val_uniform_and_perwarp() {
        assert_eq!(PredVal::Uniform(true).warp_bits(3), u32::MAX);
        assert_eq!(PredVal::Uniform(false).warp_bits(0), 0);
        let p = PredVal::PerWarp(vec![0xF, 0]);
        assert_eq!(p.warp_bits(0), 0xF);
        assert_eq!(p.warp_bits(5), 0);
        assert!(!p.is_uniform());
        assert!(PredVal::PerWarp(vec![u32::MAX; 3]).is_uniform());
    }
}

//! Satellite: asm ⇄ disasm round-trip property over generated kernels.
//!
//! Every kernel the generator can produce must survive
//! `parse_kernel(to_asm(k))` with an identical instruction stream — the
//! repro files the reducer emits are only useful if they re-parse to the
//! exact kernel that failed.

use simt_fuzz::gen_spec;
use simt_ir::{asm, disasm};

#[test]
fn generated_kernels_roundtrip_through_asm() {
    for seed in [1u64, 0xABCD, 0xDEAD_BEEF] {
        for index in 0..20u64 {
            let k = gen_spec(seed, index).build_kernel();
            let text = disasm::to_asm(&k);
            let back = asm::parse_kernel(&text).unwrap_or_else(|e| {
                panic!("seed {seed:#x} index {index}: reparse failed: {e:?}\n{text}")
            });
            assert_eq!(
                back.instrs, k.instrs,
                "seed {seed:#x} index {index}: instruction stream drifted\n{text}"
            );
            assert_eq!(back.num_params, k.num_params);
            back.validate().unwrap();
        }
    }
}

/// Round-tripping twice is a fixpoint: `to_asm` of the re-parsed kernel is
/// byte-identical to the first rendering (labels, operand syntax, widths).
#[test]
fn disasm_is_a_fixpoint_after_one_roundtrip() {
    for index in 0..12u64 {
        let k = gen_spec(0x0F1C, index).build_kernel();
        let once = disasm::to_asm(&k);
        let back = asm::parse_kernel(&once).unwrap();
        let twice = disasm::to_asm(&back);
        assert_eq!(once, twice, "index {index}: disasm not stable");
    }
}

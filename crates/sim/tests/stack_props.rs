//! Randomized tests (deterministic, std-only): the SIMT reconvergence stack
//! against a reference per-thread executor, and coalescer partition
//! invariants. A seeded SplitMix64 stream replaces proptest so the suite
//! runs in the offline build environment with reproducible cases.

use simt_sim::coalesce::coalesce;
use simt_sim::SimtStack;

/// Deterministic SplitMix64 generator (same construction as
/// `gpu_workloads::kernels::SplitMix64`, duplicated to keep this crate's
/// dev-dependency graph empty).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A tiny structured program: a list of nested if/else diamonds encoded as
/// branch-taken masks, executed over a straight-line PC space.
///
/// Reference semantics: each thread independently walks the program; the
/// stack must visit every (pc, lane) pair exactly once, with lanes grouped
/// arbitrarily.
fn check_diamonds(taken_masks: &[u32], init: u32) {
    // PC layout per diamond d (relative): 0 = branch, 1 = else-body,
    // 2 = then-body, 3 = join. Diamonds are sequential.
    let n = taken_masks.len();
    let mut visits = vec![[0u64; 32]; 4 * n + 1];
    let mut s = SimtStack::new(init);
    let mut fuel = 10_000;
    while !s.done() {
        fuel -= 1;
        assert!(fuel > 0, "stack did not terminate");
        let pc = s.pc();
        let active = s.active_mask();
        for (lane, count) in visits[pc].iter_mut().enumerate() {
            if active & (1 << lane) != 0 {
                *count += 1;
            }
        }
        let d = pc / 4;
        match pc % 4 {
            0 => {
                // Branch to then-body (pc+2), else falls to pc+1;
                // reconverge at pc+3.
                s.branch(taken_masks[d], pc + 2, pc + 3);
            }
            1 => {
                // else-body: skip over then-body to the join.
                s.branch(u32::MAX, pc + 2, pc + 2);
            }
            2 => s.advance(), // then-body → join
            3 => {
                // join: all initial lanes must be back together.
                assert_eq!(s.active_mask(), init, "lost lanes at join {pc}");
                if d + 1 == n {
                    s.exit();
                } else {
                    s.advance();
                }
            }
            _ => unreachable!(),
        }
    }
    // Reference: each live thread visits branch + exactly one body + join of
    // every diamond, exactly once.
    for (d, &taken_mask) in taken_masks.iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // lane indexes four visit rows
        for lane in 0..32 {
            let live = (init >> lane) & 1 == 1;
            let taken = (taken_mask >> lane) & 1 == 1;
            let expect = |on: bool| u64::from(live && on);
            assert_eq!(visits[4 * d][lane], expect(true), "branch d{d} lane{lane}");
            assert_eq!(
                visits[4 * d + 1][lane],
                expect(!taken),
                "else d{d} lane{lane}"
            );
            assert_eq!(
                visits[4 * d + 2][lane],
                expect(taken),
                "then d{d} lane{lane}"
            );
            assert_eq!(
                visits[4 * d + 3][lane],
                expect(true),
                "join d{d} lane{lane}"
            );
        }
    }
}

/// Executing nested diamonds through the SIMT stack touches each (pc, lane)
/// exactly as often as the per-thread reference does, and always reconverges
/// to the full mask.
#[test]
fn simt_stack_matches_per_thread_reference() {
    let mut rng = Rng(0xDAC_51A7);
    for _ in 0..256 {
        let n = 1 + rng.below(4) as usize;
        let masks: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut init = rng.next_u32();
        if init == 0 {
            init = 1;
        }
        check_diamonds(&masks, init);
    }
    // Directed corners: full warp, single lane, alternating lanes.
    check_diamonds(&[0, u32::MAX, 0xAAAA_AAAA], u32::MAX);
    check_diamonds(&[1], 1);
    check_diamonds(&[0x5555_5555, 0xAAAA_AAAA], 0x5555_5555);
}

/// Coalescing partitions the active lanes: every active lane appears in
/// exactly one transaction, lines are unique and aligned, and each lane's
/// address falls inside its transaction's line.
#[test]
fn coalesce_partitions_lanes() {
    let mut rng = Rng(0xC0A1_E5CE);
    for case in 0..512 {
        let addrs: Vec<Option<u64>> = (0..32)
            .map(|_| {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(rng.below(0x10000))
                }
            })
            .collect();
        let txns = coalesce(&addrs, 128);
        let mut seen = 0u32;
        let mut lines = std::collections::HashSet::new();
        for t in &txns {
            assert_eq!(t.line % 128, 0, "case {case}: unaligned line");
            assert!(lines.insert(t.line), "case {case}: duplicate line");
            assert_ne!(t.lanes, 0, "case {case}: empty transaction");
            assert_eq!(seen & t.lanes, 0, "case {case}: lane in two transactions");
            seen |= t.lanes;
            for (lane, addr) in addrs.iter().enumerate() {
                if t.lanes & (1 << lane) != 0 {
                    let a = addr.expect("inactive lane in transaction");
                    assert_eq!(a & !127, t.line);
                }
            }
        }
        let active: u32 = addrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .fold(0, |m, (i, _)| m | (1 << i));
        assert_eq!(
            seen, active,
            "case {case}: coalescing lost or invented lanes"
        );
    }
}

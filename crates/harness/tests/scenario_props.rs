//! Property tests for the command processor and multi-kernel streams.
//!
//! Rather than trusting the SM's internal accounting, these tests replay
//! the `CtaLaunch`/`CtaRetire` trace stream against an external model of
//! each SM's static resources (CTA slots, warp slots, shared memory,
//! register file) and assert the occupancy limits hold on every cycle of
//! every scenario × design × placement-policy combination. A second group
//! pins the harness guarantees for scenario jobs: every CTA of every
//! stream launches and retires, and `--jobs N` artifacts are byte-for-byte
//! identical to serial ones.

use dac_core::DacConfig;
use gpu_workloads::{all_scenarios, run_scenario_design_traced, Design, Scenario};
use simt_harness::{artifact, scenario_jobs, DesignPoint, Harness, Job, Overrides};
use simt_sim::{GpuConfig, GpuSim, PlacementPolicy};
use simt_trace::{RingSink, TraceEvent};

/// A 2-SM machine small enough for debug-mode CI but with the stock
/// GTX 480 per-SM limits, so the shared-memory and register-file terms in
/// CTA admission actually bind for the pressure scenarios.
fn small_gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        max_warps_per_sm: 16,
        ..GpuConfig::gtx480()
    }
}

/// Per-CTA static footprint of each flattened launch, in stream-major
/// order (the same order the simulator numbers kernels).
fn footprints(sc: &Scenario) -> Vec<(u32, u32, u32)> {
    sc.kernels()
        .iter()
        .map(|k| {
            let warps = k.launch.warps_per_cta();
            (
                warps,
                warps * 32 * k.kernel.regs_per_thread as u32,
                k.kernel.shared_bytes,
            )
        })
        .collect()
}

/// Replay the CTA placement events of one traced run against an external
/// occupancy model and return, per kernel, (launched, retired) counts.
fn replay(sc: &Scenario, gpu: &GpuConfig, sink: &RingSink) -> Vec<(u64, u64)> {
    assert_eq!(sink.dropped(), 0, "ring too small, replay would be partial");
    let fp = footprints(sc);
    let mut counts = vec![(0u64, 0u64); fp.len()];
    // Per-SM occupancy: resident CTAs, warps, regs, shared bytes.
    let mut occ = vec![(0usize, 0u32, 0u32, 0u32); gpu.num_sms];
    for ev in sink.events() {
        match ev.event {
            TraceEvent::CtaLaunch { sm, kernel, .. } => {
                let (warps, regs, shared) = fp[kernel as usize];
                let o = &mut occ[sm as usize];
                o.0 += 1;
                o.1 += warps;
                o.2 += regs;
                o.3 += shared;
                assert!(
                    o.0 <= gpu.max_ctas_per_sm,
                    "cycle {}: SM {sm} holds {} CTAs (limit {})",
                    ev.cycle,
                    o.0,
                    gpu.max_ctas_per_sm
                );
                assert!(
                    o.1 <= gpu.max_warps_per_sm as u32,
                    "cycle {}: SM {sm} holds {} warps (limit {})",
                    ev.cycle,
                    o.1,
                    gpu.max_warps_per_sm
                );
                assert!(
                    o.2 <= gpu.regfile_per_sm,
                    "cycle {}: SM {sm} holds {} regs (limit {})",
                    ev.cycle,
                    o.2,
                    gpu.regfile_per_sm
                );
                assert!(
                    o.3 <= gpu.shared_mem_per_sm,
                    "cycle {}: SM {sm} holds {} shared bytes (limit {})",
                    ev.cycle,
                    o.3,
                    gpu.shared_mem_per_sm
                );
                counts[kernel as usize].0 += 1;
            }
            TraceEvent::CtaRetire { sm, kernel, .. } => {
                let (warps, regs, shared) = fp[kernel as usize];
                let o = &mut occ[sm as usize];
                assert!(o.0 > 0, "cycle {}: retire on empty SM {sm}", ev.cycle);
                o.0 -= 1;
                o.1 -= warps;
                o.2 -= regs;
                o.3 -= shared;
                counts[kernel as usize].1 += 1;
            }
            _ => {}
        }
    }
    for (sm, o) in occ.iter().enumerate() {
        assert_eq!(
            *o,
            (0, 0, 0, 0),
            "SM {sm} still holds resources after the run"
        );
    }
    counts
}

/// Replayed against an external occupancy model, no scenario ever places
/// a CTA that would exceed an SM's CTA-slot, warp, register-file, or
/// shared-memory limit — under any design or placement policy — and
/// every resource returns to zero at the end.
#[test]
fn resident_ctas_never_exceed_sm_limits() {
    let gpu = small_gpu();
    for sc in all_scenarios(1) {
        for design in Design::ALL {
            for policy in [PlacementPolicy::Greedy, PlacementPolicy::RoundRobin] {
                let mut sink = RingSink::new(1 << 20);
                let run = run_scenario_design_traced(
                    &sc,
                    design,
                    &GpuSim::new(gpu.clone()),
                    policy,
                    DacConfig::paper(),
                    &mut sink,
                );
                let counts = replay(&sc, &gpu, &sink);
                assert_eq!(counts.len(), run.report.per_kernel.len());
                // The smem/reg pressure scenarios only test something if
                // their fat kernel is actually limited below the 8 CTA
                // slots; the footprint math guarantees that here.
                let (_, regs, shared) = footprints(&sc)[0];
                assert!(
                    regs > 0 || shared > 0 || sc.name == "pipeline",
                    "{}: first kernel declares no static resources",
                    sc.name
                );
            }
        }
    }
}

/// Every CTA of every launch in every stream is placed exactly once and
/// retired exactly once, and the per-kernel artifact stats agree with the
/// trace-replay counts.
#[test]
fn all_ctas_of_all_streams_launch_and_retire() {
    let gpu = small_gpu();
    for sc in all_scenarios(1) {
        let mut sink = RingSink::new(1 << 20);
        let run = run_scenario_design_traced(
            &sc,
            Design::Baseline,
            &GpuSim::new(gpu.clone()),
            PlacementPolicy::Greedy,
            DacConfig::paper(),
            &mut sink,
        );
        let counts = replay(&sc, &gpu, &sink);
        for ((k, sk), (launched, retired)) in
            run.report.per_kernel.iter().zip(sc.kernels()).zip(counts)
        {
            let expect = sk.launch.num_ctas();
            assert_eq!(launched, expect, "{}/{}: launches", sc.name, k.label);
            assert_eq!(retired, expect, "{}/{}: retires", sc.name, k.label);
            assert_eq!(k.ctas, expect, "{}/{}: report", sc.name, k.label);
            assert_eq!(k.stats.ctas_launched, expect);
        }
    }
}

fn scenario_suite() -> Vec<Job> {
    let overrides = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    scenario_jobs(all_scenarios(1), 1, &DesignPoint::HW_ALL, &overrides)
}

/// Serialize results without the per-invocation fields (wall time is the
/// one thing allowed to differ between runs).
fn fingerprint(jobs: &[Job], results: &[simt_harness::JobResult]) -> Vec<u8> {
    let mut out = Vec::new();
    for (job, result) in jobs.iter().zip(results) {
        out.extend_from_slice(
            artifact::to_json(job, result, None, None)
                .to_json()
                .as_bytes(),
        );
        out.push(b'\n');
    }
    out
}

/// Multi-stream scenario artifacts — including the `kernels` array — are
/// byte-identical under `--jobs 1` and `--jobs N`.
#[test]
fn scenario_artifacts_byte_identical_across_jobs() {
    let jobs = scenario_suite();
    assert_eq!(jobs.len(), 12, "3 scenarios x 4 designs");
    let serial = Harness::serial().run(&jobs);
    let bytes = fingerprint(&jobs, &serial.results);
    for workers in [2, 4] {
        let parallel = Harness::new(workers).run(&jobs);
        assert_eq!(
            bytes,
            fingerprint(&jobs, &parallel.results),
            "scenario results changed with --jobs {workers}"
        );
    }
}

/// A scenario artifact survives a serialize → parse → deserialize round
/// trip with every per-kernel field intact.
#[test]
fn scenario_artifact_round_trips_through_json() {
    let job = &scenario_suite()[3]; // smem_pressure / dac
    let result = job.execute();
    assert!(!result.per_kernel.is_empty(), "scenario must tag kernels");
    let v = artifact::to_json(job, &result, Some(7), Some("cache-key"));
    let text = v.to_json();
    let parsed = simt_harness::json::parse(&text).expect("artifact must be valid JSON");
    assert_eq!(
        parsed.get("cta_policy").and_then(|p| p.as_str()),
        Some("greedy")
    );
    let (key, back) = artifact::from_json(&parsed).expect("round trip");
    assert_eq!(key, "cache-key");
    assert_eq!(back.report.cycles, result.report.cycles);
    assert_eq!(back.report.stats, result.report.stats);
    assert_eq!(back.output_digest, result.output_digest);
    assert_eq!(back.per_kernel.len(), result.per_kernel.len());
    for (a, b) in back.per_kernel.iter().zip(&result.per_kernel) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.coproc, b.coproc);
        assert_eq!((a.stream, a.seq, a.ctas), (b.stream, b.seq, b.ctas));
        assert_eq!(a.first_cycle, b.first_cycle);
        assert_eq!(a.done_cycle, b.done_cycle);
        assert_eq!(a.stats, b.stats);
    }
}

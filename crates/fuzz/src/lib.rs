//! `simt-fuzz` — differential kernel fuzzing for the DAC reproduction.
//!
//! The paper's transparency claim (DAC, CAE, and MTA never change program
//! semantics) is pinned by 29 hand-written workloads; this crate pins it by
//! *construction*: a seeded generator produces random kernels whose memory
//! effects are order-independent by grammar, a per-thread functional oracle
//! computes the unique correct result, and a differential driver demands
//! every design reproduce it bit-for-bit along with the issue-slot
//! accounting invariants. A greedy reducer shrinks any counterexample to a
//! minimal `.asm` repro.
//!
//! Pipeline: [`gen::gen_spec`] → [`spec::KernelSpec::build_workload`] →
//! [`diff::check_workload`] → (on failure) [`reduce::reduce`] →
//! [`reduce::repro_asm`].

pub mod diff;
pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod spec;

pub use diff::{check_workload, small_overrides, DiffConfig, DiffFailure};
pub use gen::gen_spec;
pub use oracle::{run_oracle, OracleError};
pub use reduce::{reduce, reduce_with, repro_asm};
pub use spec::{KernelSpec, Stmt, GEN_VERSION};

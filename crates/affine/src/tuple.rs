//! The affine tuple: `value(tid) = base + Σ_d tid_d · off_d`, with an
//! optional modulo extension (paper §4.4).
//!
//! Within the DAC runtime the affine engine executes once per CTA, so CTA
//! indices fold into `base` at instantiation and only the three *thread*
//! dimensions keep offsets (the paper maps one base and up to six offsets
//! onto SIMT lanes; our per-CTA execution needs only the thread three —
//! see DESIGN.md).

use simt_ir::{eval, Op, Value};

/// The modulo extension of a tuple (§4.4): with it present, the value is
/// `base + (mod_base + Σ tid_d · off_d) mod divisor` (Euclidean remainder
/// of the paper's address arithmetic — results stay within `[0, divisor)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModExt {
    /// The old base reduced mod `divisor`.
    pub mod_base: i64,
    /// The scalar divisor.
    pub divisor: i64,
}

/// An affine tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineTuple {
    /// Scalar part (uniform across the CTA's threads).
    pub base: i64,
    /// Per-thread-dimension offsets (x, y, z).
    pub off: [i64; 3],
    /// Modulo extension, if this is a mod-type tuple.
    pub mod_ext: Option<ModExt>,
}

impl AffineTuple {
    /// A scalar tuple `(v, 0)`.
    pub fn scalar(v: Value) -> Self {
        AffineTuple {
            base: v as i64,
            off: [0; 3],
            mod_ext: None,
        }
    }

    /// The thread-index tuple for dimension `d` (`tid.x` is `dim 0`).
    pub fn tid(d: usize) -> Self {
        let mut off = [0i64; 3];
        off[d] = 1;
        AffineTuple {
            base: 0,
            off,
            mod_ext: None,
        }
    }

    /// Is the tuple a scalar (no thread dependence)?
    pub fn is_scalar(&self) -> bool {
        self.off == [0; 3] && self.mod_ext.is_none()
    }

    /// The scalar value, if [`AffineTuple::is_scalar`].
    pub fn as_scalar(&self) -> Option<Value> {
        self.is_scalar().then_some(self.base as Value)
    }

    /// Evaluate the tuple for thread `(tx, ty, tz)`.
    pub fn eval(&self, t: (u32, u32, u32)) -> Value {
        let lin = (t.0 as i64)
            .wrapping_mul(self.off[0])
            .wrapping_add((t.1 as i64).wrapping_mul(self.off[1]))
            .wrapping_add((t.2 as i64).wrapping_mul(self.off[2]));
        let v = match self.mod_ext {
            None => self.base.wrapping_add(lin),
            Some(m) => {
                let inner = m.mod_base.wrapping_add(lin);
                let r = if m.divisor == 0 {
                    0
                } else {
                    inner.rem_euclid(m.divisor)
                };
                self.base.wrapping_add(r)
            }
        };
        v as Value
    }

    /// Tuple + tuple (paper eq. 2). Mod-type tuples only accept a scalar
    /// addend (added to `base`).
    pub fn add(&self, rhs: &AffineTuple) -> Option<AffineTuple> {
        match (self.mod_ext, rhs.mod_ext) {
            (None, None) => Some(AffineTuple {
                base: self.base.wrapping_add(rhs.base),
                off: [
                    self.off[0].wrapping_add(rhs.off[0]),
                    self.off[1].wrapping_add(rhs.off[1]),
                    self.off[2].wrapping_add(rhs.off[2]),
                ],
                mod_ext: None,
            }),
            (Some(_), None) if rhs.is_scalar() => Some(AffineTuple {
                base: self.base.wrapping_add(rhs.base),
                ..*self
            }),
            (None, Some(_)) if self.is_scalar() => rhs.add(self),
            _ => None,
        }
    }

    /// Tuple − tuple. `mod − scalar` is allowed; `scalar − mod` is not
    /// (the remainder term would need negation).
    pub fn sub(&self, rhs: &AffineTuple) -> Option<AffineTuple> {
        match (self.mod_ext, rhs.mod_ext) {
            (None, None) => Some(AffineTuple {
                base: self.base.wrapping_sub(rhs.base),
                off: [
                    self.off[0].wrapping_sub(rhs.off[0]),
                    self.off[1].wrapping_sub(rhs.off[1]),
                    self.off[2].wrapping_sub(rhs.off[2]),
                ],
                mod_ext: None,
            }),
            (Some(_), None) if rhs.is_scalar() => Some(AffineTuple {
                base: self.base.wrapping_sub(rhs.base),
                ..*self
            }),
            _ => None,
        }
    }

    /// Tuple × scalar (paper eq. 3); for mod-type tuples every field
    /// including the divisor is scaled (§4.4). Negative scale of a mod
    /// tuple is rejected (Euclidean remainder would flip).
    pub fn mul_scalar(&self, s: i64) -> Option<AffineTuple> {
        let mod_ext = match self.mod_ext {
            None => None,
            Some(m) => {
                if s < 0 {
                    return None;
                }
                Some(ModExt {
                    mod_base: m.mod_base.wrapping_mul(s),
                    divisor: m.divisor.wrapping_mul(s),
                })
            }
        };
        Some(AffineTuple {
            base: self.base.wrapping_mul(s),
            off: [
                self.off[0].wrapping_mul(s),
                self.off[1].wrapping_mul(s),
                self.off[2].wrapping_mul(s),
            ],
            mod_ext,
        })
    }

    /// Left shift by a scalar = multiply by `2^s`.
    pub fn shl_scalar(&self, s: i64) -> Option<AffineTuple> {
        if !(0..63).contains(&s) {
            return None;
        }
        self.mul_scalar(1i64 << s)
    }

    /// Remainder by a scalar divisor (§4.4): the result becomes a mod-type
    /// tuple. Only plain affine tuples may enter a `rem`.
    pub fn rem_scalar(&self, d: i64) -> Option<AffineTuple> {
        if self.mod_ext.is_some() || d <= 0 {
            return None;
        }
        Some(AffineTuple {
            base: 0,
            off: self.off,
            mod_ext: Some(ModExt {
                mod_base: self.base.rem_euclid(d),
                divisor: d,
            }),
        })
    }

    /// Negation (plain tuples only).
    pub fn neg(&self) -> Option<AffineTuple> {
        if self.mod_ext.is_some() {
            return None;
        }
        Some(AffineTuple {
            base: self.base.wrapping_neg(),
            off: [
                self.off[0].wrapping_neg(),
                self.off[1].wrapping_neg(),
                self.off[2].wrapping_neg(),
            ],
            mod_ext: None,
        })
    }

    /// Apply an arbitrary op to *scalar* tuples via the shared functional
    /// semantics (the "scalar computation" subsumption: anything uniform is
    /// computable once on the base).
    pub fn scalar_op(op: Op, srcs: &[AffineTuple]) -> Option<AffineTuple> {
        let mut vals = [0u64; 3];
        for (i, t) in srcs.iter().enumerate() {
            vals[i] = t.as_scalar()?;
        }
        Some(AffineTuple::scalar(eval::eval(
            op, vals[0], vals[1], vals[2],
        )))
    }
}

/// Evaluate an integer ALU op on affine tuples; `None` means the result is
/// not representable as a single tuple (the compiler must have prevented
/// this, or the caller falls back to divergent/per-thread handling).
pub fn tuple_op(op: Op, srcs: &[AffineTuple]) -> Option<AffineTuple> {
    // Uniform inputs: evaluate once on the bases, any op.
    if srcs.iter().all(|t| t.is_scalar()) {
        return AffineTuple::scalar_op(op, srcs);
    }
    match op {
        Op::Mov => Some(srcs[0]),
        Op::Add => srcs[0].add(&srcs[1]),
        Op::Sub => srcs[0].sub(&srcs[1]),
        Op::Neg => srcs[0].neg(),
        Op::Mul => match (srcs[0].as_scalar(), srcs[1].as_scalar()) {
            (Some(s), None) => srcs[1].mul_scalar(s as i64),
            (None, Some(s)) => srcs[0].mul_scalar(s as i64),
            _ => None,
        },
        Op::Mad => {
            let prod = tuple_op(Op::Mul, &srcs[0..2])?;
            prod.add(&srcs[2])
        }
        Op::Shl => {
            let s = srcs[1].as_scalar()? as i64;
            srcs[0].shl_scalar(s)
        }
        Op::Rem => {
            let d = srcs[1].as_scalar()? as i64;
            srcs[0].rem_scalar(d)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(base: i64, ox: i64) -> AffineTuple {
        AffineTuple {
            base,
            off: [ox, 0, 0],
            mod_ext: None,
        }
    }

    #[test]
    fn paper_figure1_example() {
        // A = (0x100, 4), B = (0x200, 0) ⇒ C = A + B = (0x300, 4).
        let a = t(0x100, 4);
        let b = AffineTuple::scalar(0x200);
        let c = a.add(&b).unwrap();
        assert_eq!(c.base, 0x300);
        assert_eq!(c.off[0], 4);
        for tid in 0..32u32 {
            assert_eq!(c.eval((tid, 0, 0)), 0x300 + 4 * tid as u64);
        }
    }

    #[test]
    fn mul_by_scalar_and_shl() {
        let tid = AffineTuple::tid(0);
        let r1 = tuple_op(Op::Mul, &[tid, AffineTuple::scalar(4)]).unwrap();
        assert_eq!(r1, t(0, 4));
        let r2 = tuple_op(Op::Shl, &[tid, AffineTuple::scalar(2)]).unwrap();
        assert_eq!(r2, t(0, 4));
        // affine × affine is not representable.
        assert!(tuple_op(Op::Mul, &[tid, tid]).is_none());
    }

    #[test]
    fn mad_matches_componentwise() {
        // addr = tid * 4 + base.
        let r = tuple_op(
            Op::Mad,
            &[
                AffineTuple::tid(0),
                AffineTuple::scalar(4),
                AffineTuple::scalar(0x80000),
            ],
        )
        .unwrap();
        assert_eq!(r.eval((3, 0, 0)), 0x8000C);
    }

    #[test]
    fn mod_tuple_semantics() {
        // v = (tid * 4 + 6) % 8.
        let a = tuple_op(
            Op::Mad,
            &[
                AffineTuple::tid(0),
                AffineTuple::scalar(4),
                AffineTuple::scalar(6),
            ],
        )
        .unwrap();
        let m = tuple_op(Op::Rem, &[a, AffineTuple::scalar(8)]).unwrap();
        for tid in 0..16u32 {
            let expect = ((tid as i64 * 4 + 6).rem_euclid(8)) as u64;
            assert_eq!(m.eval((tid, 0, 0)), expect, "tid {tid}");
        }
        // mod + scalar adds to base.
        let shifted = m.add(&AffineTuple::scalar(100)).unwrap();
        assert_eq!(shifted.eval((1, 0, 0)), 100 + 2);
        // mod × scalar scales everything including the divisor.
        let scaled = tuple_op(Op::Mul, &[m, AffineTuple::scalar(4)]).unwrap();
        for tid in 0..16u32 {
            let expect = 4 * ((tid as i64 * 4 + 6).rem_euclid(8)) as u64;
            assert_eq!(scaled.eval((tid, 0, 0)), expect, "tid {tid}");
        }
        // mod + mod is not representable.
        assert!(m.add(&m).is_none());
        // mod of a mod is not representable.
        assert!(tuple_op(Op::Rem, &[m, AffineTuple::scalar(3)]).is_none());
    }

    #[test]
    fn scalar_subsumption_covers_any_op() {
        // Uniform float math stays scalar: 2.0 * 3.0 = 6.0.
        let a = AffineTuple::scalar(2.0f32.to_bits() as u64);
        let b = AffineTuple::scalar(3.0f32.to_bits() as u64);
        let r = tuple_op(Op::FMul, &[a, b]).unwrap();
        assert_eq!(f32::from_bits(r.as_scalar().unwrap() as u32), 6.0);
        // But affine float math is not supported.
        assert!(tuple_op(Op::FAdd, &[AffineTuple::tid(0), b]).is_none());
    }

    #[test]
    fn multi_dim_offsets() {
        // addr = tid.x * 4 + tid.y * 256.
        let x = tuple_op(Op::Mul, &[AffineTuple::tid(0), AffineTuple::scalar(4)]).unwrap();
        let y = tuple_op(Op::Mul, &[AffineTuple::tid(1), AffineTuple::scalar(256)]).unwrap();
        let a = x.add(&y).unwrap();
        assert_eq!(a.eval((3, 2, 0)), 12 + 512);
    }

    #[test]
    fn sub_and_neg() {
        let a = t(100, 8);
        let b = t(40, 4);
        assert_eq!(a.sub(&b).unwrap(), t(60, 4));
        assert_eq!(a.neg().unwrap().eval((2, 0, 0)) as i64, -(116));
    }

    #[test]
    fn eval_wraps_like_hardware() {
        let a = t(i64::MAX, 1);
        // Must not panic; wrapping semantics.
        let _ = a.eval((5, 0, 0));
    }
}

//! The sweep service core: a job queue with **single-flight semantics**
//! over the shared result store.
//!
//! Every submitted grid lowers to harness jobs and canonicalizes each
//! point to its cache key. The key's hash is the point's identity in a
//! service-wide registry: the first sweep to name a point *owns* it (the
//! service enqueues it once), and every later sweep naming the same point
//! — concurrently or after the fact — **shares** the one run. Combined
//! with the on-disk content-addressed cache this gives the three regimes
//! the north star asks for:
//!
//! * cold point → simulated once, stored, served to everyone;
//! * point in flight → second submitter attaches to the running job;
//! * warm point → resolved from the store, zero execution.
//!
//! Execution happens on a [`WorkerPool`] (non-blocking submission), so
//! the daemon keeps accepting requests while earlier grids simulate.
//! Progress is durable without any progress file: a point is done iff its
//! result is in the cache, so a restarted daemon re-enqueues manifest
//! points and the finished ones resolve instantly as cache hits.

use crate::grid::GridRequest;
use crate::manifest;
use simt_harness::{json, Job, ResultCache, WorkerPool};
use simt_obs::metrics::{Registry, SeriesValue};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Schema tag on every status/metrics/receipt document the service emits.
pub const SCHEMA: &str = "dac-serve/v1";

/// Schema tag on `GET /sweeps/:id/events` documents.
pub const EVENTS_SCHEMA: &str = "dac-sweep-events/v1";

/// Per-sweep event journal capacity. The journal is a bounded window over
/// the sweep's history: when it overflows, the oldest events are dropped
/// and reported in the `dropped` count of every subsequent poll.
const EVENT_CAP: usize = 4096;

// Histogram shapes (uniform bucket width × bucket count; the last bucket
// absorbs the tail). HTTP requests: 200µs grain out to ~25ms. Point wall
// time: 250ms grain out to ~60s. Throughput: 100k cycles/s grain.
const HTTP_LAT_US: (u64, usize) = (200, 128);
const POINT_WALL_US: (u64, usize) = (250_000, 240);
const POINT_CPS: (u64, usize) = (100_000, 128);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Results root: the cache lives in `<results>/cache`, manifests in
    /// `<results>/sweeps` — the same layout the CLI tools use, so the
    /// daemon warms up from (and feeds) every prior one-shot sweep.
    pub results_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Execute at most this many *fresh* simulations this session (cache
    /// hits are free). When the budget runs out, remaining points stay
    /// queued and resume on the next session — time-boxed incremental
    /// warming for CI, and a deterministic way to stop a daemon
    /// mid-sweep.
    pub execute_budget: Option<usize>,
    /// Intra-run worker threads for every simulation this daemon executes
    /// (`--threads`): shards SMs and L2 partitions *within* one point,
    /// byte-identical results. `None` leaves jobs serial. Distinct from
    /// `workers`, which runs whole points in parallel.
    pub threads: Option<usize>,
    /// Per-point progress lines on stderr.
    pub verbose: bool,
}

impl ServeConfig {
    /// A daemon over `results/` with `workers` threads and no budget.
    pub fn new(results_dir: impl Into<PathBuf>, workers: usize) -> Self {
        ServeConfig {
            results_dir: results_dir.into(),
            workers,
            execute_budget: None,
            threads: None,
            verbose: false,
        }
    }
}

/// How a completed point got its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Simulated fresh by this daemon session.
    Executed,
    /// Served from the on-disk result store.
    CacheHit,
}

#[derive(Debug, Clone)]
enum PointStatus {
    Queued,
    Running,
    Done { cycles: u64, resolution: Resolution },
    Failed(String),
}

impl PointStatus {
    fn is_terminal(&self) -> bool {
        matches!(self, PointStatus::Done { .. } | PointStatus::Failed(_))
    }

    fn name(&self) -> &'static str {
        match self {
            PointStatus::Queued => "queued",
            PointStatus::Running => "running",
            PointStatus::Done { .. } => "done",
            PointStatus::Failed(_) => "failed",
        }
    }
}

/// One entry in the single-flight registry.
struct PointEntry {
    job: Job,
    label: String,
    /// The sweep that first named this point (and thus enqueued it).
    owner: String,
    status: PointStatus,
}

/// One entry in a sweep's bounded event journal (see
/// [`SweepService::sweep_events`]).
#[derive(Debug, Clone)]
struct SweepEvent {
    seq: u64,
    /// `started` | `finished` | `failed` | `complete`.
    kind: &'static str,
    label: String,
    /// Point key hash (16 hex digits); empty for sweep-level events.
    run: String,
    /// `executed` | `cache_hit`, on `finished` events.
    resolution: Option<&'static str>,
    wall_us: Option<u64>,
    cycles: Option<u64>,
    error: Option<String>,
}

impl SweepEvent {
    fn to_json(&self) -> json::Value {
        let mut fields = vec![
            ("seq".into(), json::Value::Int(self.seq)),
            ("kind".into(), json::Value::Str(self.kind.into())),
            ("label".into(), json::Value::Str(self.label.clone())),
            ("run".into(), json::Value::Str(self.run.clone())),
        ];
        if let Some(r) = self.resolution {
            fields.push(("resolution".into(), json::Value::Str(r.into())));
        }
        if let Some(w) = self.wall_us {
            fields.push(("wall_us".into(), json::Value::Int(w)));
        }
        if let Some(c) = self.cycles {
            fields.push(("cycles".into(), json::Value::Int(c)));
        }
        if let Some(e) = &self.error {
            fields.push(("error".into(), json::Value::Str(e.clone())));
        }
        json::Value::Obj(fields)
    }
}

struct SweepState {
    hashes: Vec<u64>,
    submitted: Instant,
    /// Wall seconds from submission to the last point completing.
    done_wall_s: Option<f64>,
    /// Bounded journal of point lifecycle events, seq-numbered from 0.
    events: VecDeque<SweepEvent>,
    next_seq: u64,
    /// Events pushed out of the bounded journal before anyone read them.
    dropped_events: u64,
    /// Log-correlation span id shared by this sweep's structured events.
    span: u64,
}

impl SweepState {
    fn push_event(&mut self, mut event: SweepEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == EVENT_CAP {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(event);
    }
}

struct State {
    points: HashMap<u64, PointEntry>,
    sweeps: BTreeMap<String, SweepState>,
    /// Fresh simulations this session.
    executed: u64,
    /// Points resolved from the on-disk store this session.
    cache_hits: u64,
    /// Submitted points that attached to an existing entry (single-flight
    /// shares plus resubmissions).
    shared_submissions: u64,
    failed: u64,
    budget_left: Option<usize>,
    /// Dispatched pool tasks not yet finished (for idle detection).
    pending: usize,
    stopping: bool,
}

impl State {
    /// Append a point lifecycle event to the journal of every sweep that
    /// names `hash`. Callers must hold the state lock and notify the
    /// condvar afterwards (event polls wait on it).
    fn push_point_event(&mut self, hash: u64, event: SweepEvent) {
        for sweep in self.sweeps.values_mut() {
            if sweep.done_wall_s.is_none() && sweep.hashes.contains(&hash) {
                sweep.push_event(event.clone());
            }
        }
    }
}

/// What a submission did, point-count wise, **at submission time**.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// Content-addressed sweep id.
    pub id: String,
    /// True when this exact grid was already registered (the receipt then
    /// describes the existing sweep; nothing was enqueued).
    pub resubmitted: bool,
    /// Points in the grid.
    pub total: usize,
    /// Points newly enqueued by this submission.
    pub new: usize,
    /// Points already complete when this submission arrived.
    pub already_done: usize,
    /// Points owned by another sweep and still in flight — this
    /// submission shares their (single) run.
    pub inflight_shared: usize,
}

impl Receipt {
    /// The receipt as a `dac-serve/v1` JSON document.
    pub fn to_json(&self) -> json::Value {
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("id".into(), json::Value::Str(self.id.clone())),
            ("resubmitted".into(), json::Value::Bool(self.resubmitted)),
            ("total".into(), json::Value::Int(self.total as u64)),
            ("new".into(), json::Value::Int(self.new as u64)),
            (
                "already_done".into(),
                json::Value::Int(self.already_done as u64),
            ),
            (
                "inflight_shared".into(),
                json::Value::Int(self.inflight_shared as u64),
            ),
        ])
    }
}

/// The long-lived sweep service. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to the HTTP layer and to tests.
pub struct SweepService {
    cfg: ServeConfig,
    cache: ResultCache,
    state: Arc<(Mutex<State>, Condvar)>,
    pool: WorkerPool,
    started: Instant,
    /// Service-local metric registry (endpoint latency, point histograms,
    /// session counters). Per-instance so concurrent in-process services —
    /// the tests run several — do not share series; `/metrics?format=prom`
    /// concatenates this with the process-global registry (cache, logger).
    registry: Arc<Registry>,
}

impl SweepService {
    /// Start a service session: workers up, nothing submitted yet. Call
    /// [`SweepService::resume`] to pick up prior sessions' manifests.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = ResultCache::new(cfg.results_dir.join("cache"));
        let state = Arc::new((
            Mutex::new(State {
                points: HashMap::new(),
                sweeps: BTreeMap::new(),
                executed: 0,
                cache_hits: 0,
                shared_submissions: 0,
                failed: 0,
                budget_left: cfg.execute_budget,
                pending: 0,
                stopping: false,
            }),
            Condvar::new(),
        ));
        let pool = WorkerPool::new(cfg.workers);
        SweepService {
            cfg,
            cache,
            state,
            pool,
            started: Instant::now(),
            registry: Arc::new(Registry::new()),
        }
    }

    /// The service-local metric registry (exposed for tests and the
    /// Prometheus endpoint).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The configuration this session runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The shared result store.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Re-register every sweep manifest under the results root. Completed
    /// points resolve as cache hits; unfinished ones execute. Returns the
    /// ids of the sweeps that resumed with simulation work left to do
    /// (fully warm sweeps re-register silently — their points resolve from
    /// the store without executing anything).
    pub fn resume(&self) -> Vec<String> {
        let mut resumed = Vec::new();
        for m in manifest::load_all(&self.cfg.results_dir) {
            // Done-ness across a restart lives on disk, not in memory: a
            // point is finished iff its cache entry exists.
            let unfinished = m
                .request
                .jobs()
                .iter()
                .filter(|j| !self.cache.entry_path_for_hash(j.cache_hash()).exists())
                .count();
            let receipt = match self.submit(m.request.clone()) {
                Ok(r) => r,
                Err(e) => {
                    simt_obs::warn!("serve.service", "cannot resume sweep";
                        sweep = m.id.clone(), error = e);
                    continue;
                }
            };
            if receipt.id != m.id {
                // Keys changed under us (e.g. a CACHE_VERSION bump): the
                // grid resumes under its new identity.
                simt_obs::warn!("serve.service",
                    "manifest re-registered under a new id (cache keys changed)";
                    old = m.id.clone(), new = receipt.id.clone());
            }
            if unfinished > 0 {
                resumed.push(receipt.id);
            }
        }
        resumed
    }

    /// Submit a grid: register its points (single-flight), persist its
    /// manifest, and enqueue whatever is not already owned. Non-blocking —
    /// poll [`SweepService::sweep_status`] or wait on
    /// [`SweepService::wait_for_sweep`] for completion.
    pub fn submit(&self, request: GridRequest) -> Result<Receipt, String> {
        let jobs = request.jobs();
        if jobs.is_empty() {
            return Err("empty grid".into());
        }
        let id = GridRequest::sweep_id(&jobs);
        let mut to_enqueue: Vec<u64> = Vec::new();
        let receipt = {
            let (lock, _) = &*self.state;
            let mut st = lock.lock().unwrap();
            if st.stopping {
                return Err("service is shutting down".into());
            }
            if st.sweeps.contains_key(&id) {
                let receipt = Self::resubmission_receipt(&st, &id);
                st.shared_submissions += receipt.total as u64;
                return Ok(receipt);
            }
            let mut receipt = Receipt {
                id: id.clone(),
                resubmitted: false,
                total: 0,
                new: 0,
                already_done: 0,
                inflight_shared: 0,
            };
            let mut hashes = Vec::with_capacity(jobs.len());
            let mut sweep = SweepState {
                hashes: Vec::new(),
                submitted: Instant::now(),
                done_wall_s: None,
                events: VecDeque::new(),
                next_seq: 0,
                dropped_events: 0,
                span: simt_obs::log::next_span(),
            };
            for job in &jobs {
                let hash = job.cache_hash();
                if hashes.contains(&hash) {
                    continue; // duplicate point inside one grid
                }
                hashes.push(hash);
                receipt.total += 1;
                match st.points.get(&hash) {
                    Some(entry) => {
                        if entry.status.is_terminal() {
                            receipt.already_done += 1;
                            // Replay the terminal outcome into the fresh
                            // journal so `sweepctl tail` of this sweep sees
                            // every point, not just the newly-enqueued ones.
                            sweep.push_event(Self::terminal_event(hash, entry));
                        } else {
                            receipt.inflight_shared += 1;
                        }
                        st.shared_submissions += 1;
                    }
                    None => {
                        st.points.insert(
                            hash,
                            PointEntry {
                                label: job.label(),
                                job: job.clone(),
                                owner: id.clone(),
                                status: PointStatus::Queued,
                            },
                        );
                        receipt.new += 1;
                        to_enqueue.push(hash);
                    }
                }
            }
            st.pending += to_enqueue.len();
            // A grid whose every point is already terminal (e.g. a subset
            // of a completed sweep) enqueues nothing, so `complete` never
            // fires for it — close it out at submission time instead.
            let already_complete =
                to_enqueue.is_empty() && hashes.iter().all(|h| st.points[h].status.is_terminal());
            sweep.hashes = hashes;
            if already_complete {
                sweep.done_wall_s = Some(0.0);
                sweep.push_event(SweepEvent {
                    seq: 0,
                    kind: "complete",
                    label: String::new(),
                    run: String::new(),
                    resolution: None,
                    wall_us: Some(0),
                    cycles: None,
                    error: None,
                });
            }
            let span = sweep.span;
            st.sweeps.insert(id.clone(), sweep);
            simt_obs::log_at!(simt_obs::log::Level::Info, Some(span), "serve.service",
                "sweep submitted";
                sweep = id.clone(), total = receipt.total, new = receipt.new,
                already_done = receipt.already_done);
            receipt
        };
        let (_, cvar) = &*self.state;
        cvar.notify_all(); // replayed events may satisfy a waiting poll
        if let Err(e) = manifest::store(&self.cfg.results_dir, &id, &request, &jobs) {
            // Non-fatal: the sweep still runs, it just won't survive a
            // restart (mirrors the cache's read-only-checkout behaviour).
            simt_obs::warn!("serve.service", "manifest write failed";
                sweep = id.clone(), error = e.to_string());
        }
        for hash in to_enqueue {
            self.dispatch(hash);
        }
        Ok(receipt)
    }

    /// The journal event describing an already-terminal point (used when a
    /// new sweep attaches to points finished under another sweep).
    fn terminal_event(hash: u64, entry: &PointEntry) -> SweepEvent {
        match &entry.status {
            PointStatus::Done { cycles, resolution } => SweepEvent {
                seq: 0,
                kind: "finished",
                label: entry.label.clone(),
                run: format!("{hash:016x}"),
                resolution: Some(match resolution {
                    Resolution::Executed => "executed",
                    Resolution::CacheHit => "cache_hit",
                }),
                wall_us: None,
                cycles: Some(*cycles),
                error: None,
            },
            PointStatus::Failed(msg) => SweepEvent {
                seq: 0,
                kind: "failed",
                label: entry.label.clone(),
                run: format!("{hash:016x}"),
                resolution: None,
                wall_us: None,
                cycles: None,
                error: Some(msg.clone()),
            },
            // Only called for terminal points.
            _ => unreachable!("terminal_event on non-terminal point"),
        }
    }

    fn resubmission_receipt(st: &State, id: &str) -> Receipt {
        let sweep = &st.sweeps[id];
        let mut receipt = Receipt {
            id: id.to_string(),
            resubmitted: true,
            total: sweep.hashes.len(),
            new: 0,
            already_done: 0,
            inflight_shared: 0,
        };
        for hash in &sweep.hashes {
            if st.points[hash].status.is_terminal() {
                receipt.already_done += 1;
            } else {
                receipt.inflight_shared += 1;
            }
        }
        receipt
    }

    /// Run one registered point on the pool: cache first, simulate on a
    /// miss (budget permitting), store, publish.
    fn dispatch(&self, hash: u64) {
        let state = Arc::clone(&self.state);
        let cache = self.cache.clone();
        let registry = Arc::clone(&self.registry);
        let verbose = self.cfg.verbose;
        let threads = self.cfg.threads;
        self.pool.submit(move || {
            let (lock, cvar) = &*state;
            let mut job = {
                let mut st = lock.lock().unwrap();
                if st.stopping {
                    // Leave the point queued: the manifest resumes it next
                    // session. The task still counts down `pending`.
                    st.pending -= 1;
                    cvar.notify_all();
                    return;
                }
                st.points[&hash].job.clone()
            };
            // Intra-run parallelism is a daemon-local speed knob: it never
            // enters cache keys or artifacts (results are byte-identical),
            // so applying it here leaves the point's identity untouched.
            if let Some(t) = threads {
                job.overrides.threads.get_or_insert(t);
            }
            let run = format!("{hash:016x}");

            // Store lookup outside the lock — it reads the filesystem.
            let lookup_started = Instant::now();
            if let Some(hit) = cache.load(&job) {
                let wall_us = lookup_started.elapsed().as_micros() as u64;
                registry.counter_add(
                    "simt_points_resolved_total",
                    "Sweep points resolved this session, by how.",
                    &[("resolution", "cache_hit")],
                    1,
                );
                let mut st = lock.lock().unwrap();
                st.cache_hits += 1;
                st.push_point_event(
                    hash,
                    SweepEvent {
                        seq: 0,
                        kind: "finished",
                        label: job.label(),
                        run,
                        resolution: Some("cache_hit"),
                        wall_us: Some(wall_us),
                        cycles: Some(hit.report.cycles),
                        error: None,
                    },
                );
                Self::complete(
                    &mut st,
                    hash,
                    PointStatus::Done {
                        cycles: hit.report.cycles,
                        resolution: Resolution::CacheHit,
                    },
                );
                if verbose {
                    eprintln!("  {:<24} cached", job.label());
                }
                cvar.notify_all();
                return;
            }

            {
                let mut st = lock.lock().unwrap();
                if st.stopping {
                    st.pending -= 1;
                    cvar.notify_all();
                    return;
                }
                if let Some(budget) = &mut st.budget_left {
                    if *budget == 0 {
                        // Out of budget: the point stays queued for the
                        // next session.
                        st.pending -= 1;
                        cvar.notify_all();
                        return;
                    }
                    *budget -= 1;
                }
                if let Some(entry) = st.points.get_mut(&hash) {
                    entry.status = PointStatus::Running;
                }
                st.push_point_event(
                    hash,
                    SweepEvent {
                        seq: 0,
                        kind: "started",
                        label: job.label(),
                        run: run.clone(),
                        resolution: None,
                        wall_us: None,
                        cycles: None,
                        error: None,
                    },
                );
                cvar.notify_all();
            }

            let sim_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| job.execute()));
            let wall_us = sim_started.elapsed().as_micros() as u64;
            let mut st = lock.lock().unwrap();
            match outcome {
                Ok(result) => {
                    cache.store(&job, &result);
                    let cycles = result.report.cycles;
                    registry.counter_add(
                        "simt_points_resolved_total",
                        "Sweep points resolved this session, by how.",
                        &[("resolution", "executed")],
                        1,
                    );
                    registry.observe(
                        "simt_point_wall_us",
                        "Fresh-simulation wall time per point, microseconds.",
                        &[],
                        POINT_WALL_US.0,
                        POINT_WALL_US.1,
                        wall_us,
                    );
                    if wall_us > 0 {
                        registry.observe(
                            "simt_point_cycles_per_sec",
                            "Simulation throughput per executed point, cycles per second.",
                            &[],
                            POINT_CPS.0,
                            POINT_CPS.1,
                            (cycles as u128 * 1_000_000 / wall_us as u128) as u64,
                        );
                    }
                    st.executed += 1;
                    st.push_point_event(
                        hash,
                        SweepEvent {
                            seq: 0,
                            kind: "finished",
                            label: job.label(),
                            run,
                            resolution: Some("executed"),
                            wall_us: Some(wall_us),
                            cycles: Some(cycles),
                            error: None,
                        },
                    );
                    Self::complete(
                        &mut st,
                        hash,
                        PointStatus::Done {
                            cycles,
                            resolution: Resolution::Executed,
                        },
                    );
                    if verbose {
                        eprintln!("  {:<24} ok ({:.1}s)", job.label(), result.wall_ms / 1e3);
                    }
                }
                Err(p) => {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "simulation panicked".into());
                    registry.counter_add(
                        "simt_points_resolved_total",
                        "Sweep points resolved this session, by how.",
                        &[("resolution", "failed")],
                        1,
                    );
                    st.failed += 1;
                    st.push_point_event(
                        hash,
                        SweepEvent {
                            seq: 0,
                            kind: "failed",
                            label: job.label(),
                            run,
                            resolution: None,
                            wall_us: Some(wall_us),
                            cycles: None,
                            error: Some(msg.clone()),
                        },
                    );
                    Self::complete(&mut st, hash, PointStatus::Failed(msg.clone()));
                    simt_obs::warn!("serve.service", "point failed";
                        point = job.label(), error = msg);
                }
            }
            cvar.notify_all();
        });
    }

    /// Publish a terminal status for a point and close out any sweep this
    /// completes. Called with the state lock held.
    fn complete(st: &mut State, hash: u64, status: PointStatus) {
        if let Some(entry) = st.points.get_mut(&hash) {
            entry.status = status;
        }
        st.pending -= 1;
        // Close out sweeps whose last point this was. O(sweeps × points),
        // fine at service scale and only on completions.
        let done_sweeps: Vec<(String, f64)> = st
            .sweeps
            .iter()
            .filter(|(_, sw)| sw.done_wall_s.is_none() && sw.hashes.contains(&hash))
            .filter(|(_, sw)| sw.hashes.iter().all(|h| st.points[h].status.is_terminal()))
            .map(|(id, sw)| (id.clone(), sw.submitted.elapsed().as_secs_f64()))
            .collect();
        for (id, wall_s) in done_sweeps {
            if let Some(sw) = st.sweeps.get_mut(&id) {
                sw.done_wall_s = Some(wall_s);
                sw.push_event(SweepEvent {
                    seq: 0,
                    kind: "complete",
                    label: String::new(),
                    run: String::new(),
                    resolution: None,
                    wall_us: Some((wall_s * 1e6) as u64),
                    cycles: None,
                    error: None,
                });
                simt_obs::log_at!(simt_obs::log::Level::Info, Some(sw.span),
                    "serve.service", "sweep complete";
                    sweep = id.clone(), wall_s = wall_s);
            }
        }
    }

    /// Stop accepting work and stop starting simulations; queued points
    /// stay queued (their manifests resume them next session). Running
    /// simulations finish. Dropping the service calls this implicitly.
    pub fn stop(&self) {
        let (lock, cvar) = &*self.state;
        lock.lock().unwrap().stopping = true;
        cvar.notify_all();
    }

    /// Block until the sweep has no unfinished points, the service stalls
    /// (budget exhausted / stopping), or the timeout elapses. Returns true
    /// iff the sweep completed.
    pub fn wait_for_sweep(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        loop {
            let Some(sweep) = st.sweeps.get(id) else {
                return false;
            };
            if sweep.done_wall_s.is_some() {
                return true;
            }
            if st.pending == 0 {
                return false; // stalled: budget ran out or stopping
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cvar.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Block until no dispatched work remains (completed or stalled), or
    /// the timeout elapses. Returns true iff the service went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        while st.pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cvar.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        true
    }

    /// Record one served HTTP request for `/metrics` latency accounting.
    pub fn record_endpoint(&self, label: &str, micros: u64) {
        self.registry.observe(
            "simt_http_request_duration_us",
            "HTTP request service time by endpoint, microseconds.",
            &[("endpoint", label)],
            HTTP_LAT_US.0,
            HTTP_LAT_US.1,
            micros,
        );
    }

    /// The event-journal document for one sweep
    /// (`GET /sweeps/:id/events?since=N`), or `None` for an unknown id.
    ///
    /// Long-poll: blocks up to `wait` for an event with `seq >= since` to
    /// exist (returning early once the sweep is complete — there will be
    /// no further events). The reply carries `next`, the cursor to pass as
    /// the following poll's `since`, and `dropped`, the number of events
    /// that aged out of the bounded journal before being read.
    pub fn sweep_events(&self, id: &str, since: u64, wait: Duration) -> Option<json::Value> {
        let deadline = Instant::now() + wait;
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        loop {
            let sweep = st.sweeps.get(id)?;
            let has_new = sweep.next_seq > since;
            if has_new || sweep.done_wall_s.is_some() {
                let events: Vec<json::Value> = sweep
                    .events
                    .iter()
                    .filter(|e| e.seq >= since)
                    .map(SweepEvent::to_json)
                    .collect();
                return Some(json::Value::Obj(vec![
                    ("schema".into(), json::Value::Str(EVENTS_SCHEMA.into())),
                    ("id".into(), json::Value::Str(id.into())),
                    ("since".into(), json::Value::Int(since)),
                    ("next".into(), json::Value::Int(sweep.next_seq)),
                    (
                        "complete".into(),
                        json::Value::Bool(sweep.done_wall_s.is_some()),
                    ),
                    ("dropped".into(), json::Value::Int(sweep.dropped_events)),
                    ("events".into(), json::Value::Arr(events)),
                ]));
            }
            let now = Instant::now();
            if now >= deadline {
                // Timed out with nothing new: an empty, well-formed reply.
                return Some(json::Value::Obj(vec![
                    ("schema".into(), json::Value::Str(EVENTS_SCHEMA.into())),
                    ("id".into(), json::Value::Str(id.into())),
                    ("since".into(), json::Value::Int(since)),
                    ("next".into(), json::Value::Int(sweep.next_seq)),
                    ("complete".into(), json::Value::Bool(false)),
                    ("dropped".into(), json::Value::Int(sweep.dropped_events)),
                    ("events".into(), json::Value::Arr(Vec::new())),
                ]));
            }
            let (guard, _) = cvar.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// The status document for one sweep (`GET /sweeps/:id`), or `None`
    /// for an unknown id.
    pub fn sweep_status(&self, id: &str) -> Option<json::Value> {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let sweep = st.sweeps.get(id)?;
        let mut by_status = BTreeMap::<&str, u64>::new();
        let (mut executed, mut cache_hits, mut shared) = (0u64, 0u64, 0u64);
        let mut points = Vec::new();
        for hash in &sweep.hashes {
            let entry = &st.points[hash];
            *by_status.entry(entry.status.name()).or_default() += 1;
            if entry.owner == id {
                if let PointStatus::Done { resolution, .. } = entry.status {
                    match resolution {
                        Resolution::Executed => executed += 1,
                        Resolution::CacheHit => cache_hits += 1,
                    }
                }
            } else {
                shared += 1;
            }
            let mut fields = vec![
                ("label".into(), json::Value::Str(entry.label.clone())),
                ("run".into(), json::Value::Str(format!("{hash:016x}"))),
                (
                    "status".into(),
                    json::Value::Str(entry.status.name().into()),
                ),
            ];
            match &entry.status {
                PointStatus::Done { cycles, .. } => {
                    fields.push(("cycles".into(), json::Value::Int(*cycles)));
                }
                PointStatus::Failed(msg) => {
                    fields.push(("error".into(), json::Value::Str(msg.clone())));
                }
                _ => {}
            }
            points.push(json::Value::Obj(fields));
        }
        let total = sweep.hashes.len() as u64;
        let done = by_status.get("done").copied().unwrap_or(0);
        let failed = by_status.get("failed").copied().unwrap_or(0);
        let complete = sweep.done_wall_s.is_some();
        let wall_s = sweep
            .done_wall_s
            .unwrap_or_else(|| sweep.submitted.elapsed().as_secs_f64());
        let mut fields = vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("id".into(), json::Value::Str(id.into())),
            ("complete".into(), json::Value::Bool(complete)),
            ("total".into(), json::Value::Int(total)),
            ("done".into(), json::Value::Int(done)),
            (
                "queued".into(),
                json::Value::Int(by_status.get("queued").copied().unwrap_or(0)),
            ),
            (
                "running".into(),
                json::Value::Int(by_status.get("running").copied().unwrap_or(0)),
            ),
            ("failed".into(), json::Value::Int(failed)),
            ("executed".into(), json::Value::Int(executed)),
            ("cache_hits".into(), json::Value::Int(cache_hits)),
            ("shared".into(), json::Value::Int(shared)),
            ("wall_s".into(), json::Value::Float(wall_s)),
        ];
        if complete && wall_s > 0.0 {
            fields.push((
                "points_per_sec".into(),
                json::Value::Float(total as f64 / wall_s),
            ));
        }
        fields.push(("points".into(), json::Value::Arr(points)));
        Some(json::Value::Obj(fields))
    }

    /// The service overview document (`GET /status`).
    pub fn status(&self) -> json::Value {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let queued = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Queued))
            .count() as u64;
        let running = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Running))
            .count() as u64;
        let paused = st.budget_left == Some(0) && queued > 0;
        let sweeps = st
            .sweeps
            .iter()
            .map(|(id, sw)| {
                let done = sw
                    .hashes
                    .iter()
                    .filter(|h| st.points[h].status.is_terminal())
                    .count() as u64;
                json::Value::Obj(vec![
                    ("id".into(), json::Value::Str(id.clone())),
                    ("total".into(), json::Value::Int(sw.hashes.len() as u64)),
                    ("done".into(), json::Value::Int(done)),
                    (
                        "complete".into(),
                        json::Value::Bool(sw.done_wall_s.is_some()),
                    ),
                ])
            })
            .collect();
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            (
                "uptime_s".into(),
                json::Value::Float(self.started.elapsed().as_secs_f64()),
            ),
            (
                "workers".into(),
                json::Value::Int(self.pool.workers() as u64),
            ),
            (
                "budget_left".into(),
                match st.budget_left {
                    Some(n) => json::Value::Int(n as u64),
                    None => json::Value::Null,
                },
            ),
            ("paused".into(), json::Value::Bool(paused)),
            ("queue_depth".into(), json::Value::Int(queued)),
            ("running".into(), json::Value::Int(running)),
            ("sweeps".into(), json::Value::Arr(sweeps)),
        ])
    }

    /// The service counters document (`GET /metrics`): queue depth,
    /// in-flight, cache hit rate, points/sec, per-endpoint latency.
    pub fn metrics(&self) -> json::Value {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let queued = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Queued))
            .count() as u64;
        let running = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Running))
            .count() as u64;
        let resolved = st.executed + st.cache_hits;
        let hit_rate = if resolved > 0 {
            st.cache_hits as f64 / resolved as f64
        } else {
            0.0
        };
        let uptime = self.started.elapsed().as_secs_f64();
        // Endpoint latency now lives in the registry as histograms; the
        // JSON document reports their summary stats (count/mean/max plus
        // the percentiles the old count/total/max accounting could not).
        let endpoints = self
            .registry
            .snapshot()
            .iter()
            .filter(|f| f.name == "simt_http_request_duration_us")
            .flat_map(|f| &f.series)
            .filter_map(|series| {
                let label = series
                    .labels
                    .iter()
                    .find(|(k, _)| k == "endpoint")
                    .map(|(_, v)| v.clone())?;
                let SeriesValue::Hist(h) = &series.value else {
                    return None;
                };
                Some((
                    label,
                    json::Value::Obj(vec![
                        ("count".into(), json::Value::Int(h.count)),
                        ("mean_us".into(), json::Value::Float(h.mean)),
                        ("max_us".into(), json::Value::Int(h.max)),
                        ("p50_us".into(), json::Value::Int(h.p50)),
                        ("p90_us".into(), json::Value::Int(h.p90)),
                        ("p99_us".into(), json::Value::Int(h.p99)),
                    ]),
                ))
            })
            .collect();
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("uptime_s".into(), json::Value::Float(uptime)),
            ("queue_depth".into(), json::Value::Int(queued)),
            ("in_flight".into(), json::Value::Int(running)),
            ("executed".into(), json::Value::Int(st.executed)),
            ("cache_hits".into(), json::Value::Int(st.cache_hits)),
            (
                "shared_submissions".into(),
                json::Value::Int(st.shared_submissions),
            ),
            ("failed".into(), json::Value::Int(st.failed)),
            ("cache_hit_rate".into(), json::Value::Float(hit_rate)),
            (
                "points_per_sec".into(),
                json::Value::Float(if uptime > 0.0 {
                    resolved as f64 / uptime
                } else {
                    0.0
                }),
            ),
            ("endpoints".into(), json::Value::Obj(endpoints)),
        ])
    }

    /// The Prometheus text exposition (`GET /metrics?format=prom`):
    /// the service registry (request latency, point histograms, resolution
    /// counters, freshly-set gauges) concatenated with the process-global
    /// registry (harness cache counters, logger self-counters). Family
    /// names are disjoint between the two; output is sorted by name.
    pub fn prom_metrics(&self) -> String {
        let (queued, running, shared) = {
            let (lock, _) = &*self.state;
            let st = lock.lock().unwrap();
            (
                st.points
                    .values()
                    .filter(|p| matches!(p.status, PointStatus::Queued))
                    .count(),
                st.points
                    .values()
                    .filter(|p| matches!(p.status, PointStatus::Running))
                    .count(),
                st.shared_submissions,
            )
        };
        self.registry.gauge_set(
            "simt_queue_depth",
            "Points registered but not yet resolved or running.",
            &[],
            queued as f64,
        );
        self.registry.gauge_set(
            "simt_in_flight",
            "Points currently simulating.",
            &[],
            running as f64,
        );
        self.registry.gauge_set(
            "simt_uptime_seconds",
            "Seconds since service start.",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        self.registry.gauge_set(
            "simt_shared_submissions",
            "Submitted points that attached to an existing run (single-flight shares).",
            &[],
            shared as f64,
        );
        let mut families = self.registry.snapshot();
        families.extend(simt_obs::metrics::global().snapshot());
        families.sort_by(|a, b| a.name.cmp(b.name));
        simt_obs::prom::render(&families)
    }

    /// (executed, cache_hits, shared_submissions, failed) session counters
    /// — the accounting the tests assert single-flight semantics with.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        (st.executed, st.cache_hits, st.shared_submissions, st.failed)
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        // Stop starting new simulations; the pool's own Drop then joins
        // the workers (queued tasks see `stopping` and return instantly).
        self.stop();
    }
}

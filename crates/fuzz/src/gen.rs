//! Seeded random kernel generation.
//!
//! Each `(seed, index)` pair deterministically maps to one [`KernelSpec`]:
//! the pair seeds a private SplitMix64 stream, so `fuzz --seed S --count N`
//! is byte-reproducible and each index can be regenerated in isolation.
//!
//! Every kernel draws a *profile* that skews the statement mix — affine
//! streaming, nested divergence, switch-heavy control flow, irregular loops,
//! or atomic/gather pressure — so the corpus exercises CAE, MTA, and DAC
//! along different axes instead of averaging into uniform noise.

use crate::spec::{Cond, KernelSpec, Stmt, Trip, Vref, A_WORDS};
use gpu_workloads::kernels::SplitMix64;
use simt_ir::{AtomOp, CmpOp, Op};

/// Statement kinds, in weight-table order.
const K_ALU_IMM: usize = 0;
const K_ALU2: usize = 1;
const K_MAD: usize = 2;
const K_ACCUM: usize = 3;
const K_LOAD_AFFINE: usize = 4;
const K_LOAD_INDIRECT: usize = 5;
const K_SELECT: usize = 6;
const K_FLOAT: usize = 7;
const K_IF: usize = 8;
const K_LOOP: usize = 9;
const K_SWITCH: usize = 10;
const K_STORE: usize = 11;
const K_ATOMIC: usize = 12;
const N_KINDS: usize = 13;

/// Per-profile statement weights.
const PROFILES: [[u32; N_KINDS]; 5] = [
    // 0: affine-heavy — long address chains DAC can decouple.
    [20, 5, 5, 5, 25, 5, 3, 4, 8, 6, 2, 8, 4],
    // 1: divergence-heavy — nested/irregular if trees.
    [10, 8, 3, 5, 8, 8, 6, 2, 25, 8, 8, 6, 3],
    // 2: switch-heavy control flow.
    [10, 8, 4, 4, 10, 6, 4, 2, 10, 5, 25, 8, 4],
    // 3: loop-irregular — data-dependent trip counts.
    [10, 8, 4, 10, 8, 10, 4, 2, 12, 20, 4, 6, 2],
    // 4: atomic / gather pressure.
    [10, 10, 4, 4, 10, 12, 6, 4, 10, 6, 4, 5, 15],
];

/// Generate the spec for `(seed, index)`.
pub fn gen_spec(seed: u64, index: u64) -> KernelSpec {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    // Burn one draw so nearby seeds decorrelate quickly.
    rng.next_u64();
    let profile = rng.below(PROFILES.len() as u32) as usize;
    let grid = 1 + rng.below(3);
    let block = match rng.below(6) {
        0 => 32,
        1 => 64,
        2 => 128,
        3 => 48, // partial warp
        4 => 96,
        _ => 1 + rng.below(127), // arbitrary, usually ragged
    };
    let mut g = Gen {
        rng,
        weights: &PROFILES[profile],
        grid,
        block,
        atom_op: AtomOp::Add,
    };
    // One atomic op per kernel: mixing ops on a shared slot (e.g. add then
    // min) is order-dependent, which would break the oracle contract. A
    // homogeneous op stream commutes regardless of interleaving.
    g.atom_op = [AtomOp::Add, AtomOp::Min, AtomOp::Max][g.rng.below(3) as usize];
    let n = 5 + g.rng.below(8);
    let body = g.block(n as usize, 0, 0);
    let mut spec = KernelSpec {
        seed,
        index,
        grid,
        block,
        slots: 8,
        body,
    };
    // The lowerer does no register allocation — every value gets a fresh
    // register — so statement-heavy kernels can exceed an SM's register
    // file and become permanently unplaceable (the simulator rejects such
    // launches at validation time). Halve the block until the CTA's static
    // footprint fits the smallest machine shape the fuzzer targets.
    let regs = spec.build_kernel().regs_per_thread as u64;
    while spec.block > 32 && spec.block.div_ceil(32) as u64 * 32 * regs > FUZZ_REGFILE {
        spec.block = spec.block.div_ceil(2);
    }
    assert!(
        32 * regs <= FUZZ_REGFILE,
        "seed {seed:#x} index {index}: single-warp CTA needs {regs} regs/thread"
    );
    spec
}

/// Smallest per-SM register file the differential harness simulates
/// (matches the default `Cfg::regfile_per_sm`).
const FUZZ_REGFILE: u64 = 32768;

struct Gen<'a> {
    rng: SplitMix64,
    weights: &'a [u32; N_KINDS],
    grid: u32,
    block: u32,
    atom_op: AtomOp,
}

impl Gen<'_> {
    fn vref(&mut self) -> Vref {
        Vref(self.rng.next_u64() as u32)
    }

    fn cond(&mut self) -> Cond {
        let k = 1 + self.rng.below(6);
        let mask = (1i64 << k) - 1;
        let cmp = match self.rng.below(6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        };
        Cond {
            a: self.vref(),
            mask,
            cmp,
            imm: self.rng.below(mask as u32 + 1) as i64,
        }
    }

    /// An affine load index must stay inside `A_WORDS` for the worst thread.
    fn affine_load(&mut self) -> Stmt {
        let max_tid = (self.grid * self.block - 1) as i64;
        let scale = [1i64, 1, 2, 4][self.rng.below(4) as usize];
        let headroom = A_WORDS as i64 - 1 - max_tid * scale;
        let offset = if headroom > 0 {
            self.rng.below(headroom.min(64) as u32) as i64
        } else {
            0
        };
        Stmt::LoadAffine {
            arr: self.rng.below(2) as u8,
            scale: if max_tid * scale + offset < A_WORDS as i64 {
                scale
            } else {
                1
            },
            offset,
        }
    }

    fn alu2_op(&mut self) -> Op {
        [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Min,
            Op::Max,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Div,
            Op::Rem,
        ][self.rng.below(10) as usize]
    }

    fn stmt(&mut self, depth: u32, loop_depth: u32) -> Stmt {
        let total: u32 = self.weights.iter().sum();
        let mut pick = self.rng.below(total);
        let mut kind = 0;
        for (k, w) in self.weights.iter().enumerate() {
            if pick < *w {
                kind = k;
                break;
            }
            pick -= w;
        }
        // Depth limits: no further nesting at depth 3, at most two nested
        // loops (keeps worst-case trip products small and runtimes bounded).
        let structural_ok = depth < 3;
        let loop_ok = structural_ok && loop_depth < 2;
        match kind {
            K_IF | K_SWITCH if !structural_ok => self.stmt_leaf(),
            K_LOOP if !loop_ok => self.stmt_leaf(),
            K_ALU_IMM => self.alu_imm(),
            K_ALU2 => Stmt::Alu2 {
                op: self.alu2_op(),
                a: self.vref(),
                b: self.vref(),
            },
            K_MAD => Stmt::Mad {
                a: self.vref(),
                b: self.vref(),
                c: self.vref(),
            },
            K_ACCUM => Stmt::Accum {
                dst: self.vref(),
                op: [Op::Add, Op::Xor, Op::Min, Op::Max][self.rng.below(4) as usize],
                src: self.vref(),
            },
            K_LOAD_AFFINE => self.affine_load(),
            K_LOAD_INDIRECT => Stmt::LoadIndirect {
                arr: self.rng.below(2) as u8,
                a: self.vref(),
                scale: 1 + self.rng.below(8) as i64,
                offset: self.rng.below(64) as i64,
                guard: if self.rng.below(4) == 0 {
                    Some(self.cond())
                } else {
                    None
                },
            },
            K_SELECT => Stmt::Select {
                cond: self.cond(),
                t: self.vref(),
                f: self.vref(),
            },
            K_FLOAT => Stmt::Float {
                a: self.vref(),
                factor: (1 + self.rng.below(15)) as f32 * 0.5,
                bias: self.rng.below(8) as f32,
            },
            K_IF => {
                let n_then = 1 + self.rng.below(3) as usize;
                let n_els = self.rng.below(3) as usize;
                Stmt::If {
                    cond: self.cond(),
                    then: self.block(n_then, depth + 1, loop_depth),
                    els: self.block(n_els, depth + 1, loop_depth),
                }
            }
            K_LOOP => {
                let trip = if self.rng.below(2) == 0 {
                    Trip::Const(1 + self.rng.below(if loop_depth == 0 { 7 } else { 3 }) as u8)
                } else {
                    Trip::Data(self.vref(), if loop_depth == 0 { 7 } else { 3 })
                };
                let n = 1 + self.rng.below(3) as usize;
                Stmt::Loop {
                    trip,
                    body: self.block(n, depth + 1, loop_depth + 1),
                }
            }
            K_SWITCH => {
                let ways = if self.rng.below(2) == 0 { 2 } else { 4 };
                let arms = (0..ways)
                    .map(|_| {
                        let n = 1 + self.rng.below(2) as usize;
                        self.block(n, depth + 1, loop_depth)
                    })
                    .collect();
                Stmt::Switch {
                    a: self.vref(),
                    arms,
                }
            }
            K_STORE => Stmt::Store {
                val: self.vref(),
                guard: if self.rng.below(3) == 0 {
                    Some(self.cond())
                } else {
                    None
                },
            },
            K_ATOMIC => Stmt::Atomic {
                op: self.atom_op,
                slot: self.vref(),
                val: self.vref(),
            },
            _ => self.stmt_leaf(),
        }
    }

    /// A guaranteed-leaf statement for when nesting limits are hit.
    fn stmt_leaf(&mut self) -> Stmt {
        if self.rng.below(3) == 0 {
            self.affine_load()
        } else {
            self.alu_imm()
        }
    }

    fn alu_imm(&mut self) -> Stmt {
        let (op, imm) = match self.rng.below(10) {
            0..=2 => (Op::Add, self.rng.below(64) as i64),
            3 => (Op::Sub, self.rng.below(64) as i64),
            4 => (Op::Mul, 1 + self.rng.below(7) as i64),
            5 => (Op::Shl, self.rng.below(4) as i64),
            6 => (Op::Shr, self.rng.below(5) as i64),
            7 => (Op::And, (1i64 << (1 + self.rng.below(10))) - 1),
            8 => (Op::Xor, self.rng.below(256) as i64),
            _ => (Op::Rem, 1 + self.rng.below(9) as i64),
        };
        Stmt::AluImm {
            op,
            a: self.vref(),
            imm,
        }
    }

    fn block(&mut self, n: usize, depth: u32, loop_depth: u32) -> Vec<Stmt> {
        (0..n).map(|_| self.stmt(depth, loop_depth)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..32 {
            assert_eq!(gen_spec(42, i), gen_spec(42, i));
        }
        assert_ne!(gen_spec(42, 0), gen_spec(43, 0));
    }

    #[test]
    fn generated_kernels_validate() {
        for i in 0..64 {
            let spec = gen_spec(0xF00D, i);
            let w = spec.build_workload();
            w.kernel.validate().unwrap_or_else(|e| {
                panic!("seed 0xF00D index {i}: invalid kernel: {e:?}");
            });
            assert!(w.launch.params.len() == 4);
        }
    }

    #[test]
    fn profiles_cover_all_statement_kinds() {
        // Across a modest window every statement kind should appear.
        let mut seen = [false; N_KINDS];
        fn mark(seen: &mut [bool; N_KINDS], body: &[Stmt]) {
            for s in body {
                let k = match s {
                    Stmt::AluImm { .. } => K_ALU_IMM,
                    Stmt::Alu2 { .. } => K_ALU2,
                    Stmt::Mad { .. } => K_MAD,
                    Stmt::Accum { .. } => K_ACCUM,
                    Stmt::LoadAffine { .. } => K_LOAD_AFFINE,
                    Stmt::LoadIndirect { .. } => K_LOAD_INDIRECT,
                    Stmt::Select { .. } => K_SELECT,
                    Stmt::Float { .. } => K_FLOAT,
                    Stmt::If { then, els, .. } => {
                        mark(seen, then);
                        mark(seen, els);
                        K_IF
                    }
                    Stmt::Loop { body, .. } => {
                        mark(seen, body);
                        K_LOOP
                    }
                    Stmt::Switch { arms, .. } => {
                        for a in arms {
                            mark(seen, a);
                        }
                        K_SWITCH
                    }
                    Stmt::Store { .. } => K_STORE,
                    Stmt::Atomic { .. } => K_ATOMIC,
                };
                seen[k] = true;
            }
        }
        for i in 0..200 {
            mark(&mut seen, &gen_spec(1, i).body);
        }
        assert!(seen.iter().all(|s| *s), "missing kinds: {seen:?}");
    }
}

//! Banked DRAM with open-row (row-buffer) timing and a bandwidth-limited
//! data bus.

use simt_trace::{NullTracer, TraceEvent, Tracer};
use std::collections::VecDeque;

/// A memory request as seen by DRAM: just a line address plus whether it is
/// a write, and an opaque id used by the fabric to route the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Cache-line address.
    pub line: u64,
    /// True for write-back traffic (no response generated).
    pub write: bool,
    /// Fabric routing id.
    pub id: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// One DRAM partition: a command queue feeding `banks` banks, each with an
/// open-row register, plus a shared data bus that transfers one line per
/// `burst_cycles`.
///
/// Bank *occupancy* (tCCD / tRC — how soon the bank takes another command)
/// is modelled separately from access *latency* (when the data is ready):
/// banks pipeline, so throughput is much higher than 1/latency.
#[derive(Debug, Clone)]
pub struct DramPartition {
    queue: VecDeque<DramRequest>,
    banks: Vec<Bank>,
    row_bytes: u64,
    row_hit_latency: u64,
    row_miss_latency: u64,
    row_hit_busy: u64,
    row_miss_busy: u64,
    burst_cycles: u64,
    queue_capacity: usize,
    bus_free_at: u64,
    /// Completed (cycle_ready, request) pairs awaiting pickup by the fabric.
    done: VecDeque<(u64, DramRequest)>,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Requests serviced (reads + writes).
    pub serviced: u64,
    /// Cycles a request at the queue head could not be scheduled.
    pub stall_cycles: u64,
}

impl DramPartition {
    /// Create a partition.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        banks: usize,
        row_bytes: u64,
        row_hit_latency: u64,
        row_miss_latency: u64,
        row_hit_busy: u64,
        row_miss_busy: u64,
        burst_cycles: u64,
        queue_capacity: usize,
    ) -> Self {
        DramPartition {
            queue: VecDeque::new(),
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                banks
            ],
            row_bytes,
            row_hit_latency,
            row_miss_latency,
            row_hit_busy,
            row_miss_busy,
            burst_cycles,
            queue_capacity,
            bus_free_at: 0,
            done: VecDeque::new(),
            row_hits: 0,
            row_misses: 0,
            serviced: 0,
            stall_cycles: 0,
        }
    }

    /// Is there room in the command queue?
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_capacity
    }

    /// Enqueue a request.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers must check
    /// [`DramPartition::can_accept`].
    pub fn push(&mut self, req: DramRequest) {
        assert!(self.can_accept(), "DRAM queue overflow");
        self.queue.push_back(req);
    }

    fn bank_of(&self, line: u64) -> usize {
        ((line / self.row_bytes) % self.banks.len() as u64) as usize
    }

    fn row_of(&self, line: u64) -> u64 {
        line / self.row_bytes / self.banks.len() as u64
    }

    /// Advance one cycle: FR-FCFS scheduling — prefer the oldest request
    /// that hits an open row in a free bank, then the oldest request whose
    /// bank is free (one scheduling decision per cycle, deterministic).
    pub fn cycle(&mut self, now: u64) {
        self.cycle_traced(now, 0, &mut NullTracer);
    }

    /// [`DramPartition::cycle`] emitting a [`TraceEvent::DramAccess`] per
    /// scheduling decision. `partition` is only used to label the event.
    pub fn cycle_traced(&mut self, now: u64, partition: usize, tracer: &mut dyn Tracer) {
        if self.queue.is_empty() {
            return;
        }
        let mut pick: Option<usize> = None;
        let mut fallback: Option<usize> = None;
        for (i, r) in self.queue.iter().enumerate() {
            let b = self.bank_of(r.line);
            if self.banks[b].busy_until > now {
                continue;
            }
            if self.banks[b].open_row == Some(self.row_of(r.line)) {
                pick = Some(i);
                break;
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
        }
        let Some(idx) = pick.or(fallback) else {
            self.stall_cycles += 1;
            return;
        };
        let req = self.queue[idx];
        let b = self.bank_of(req.line);
        let row = self.row_of(req.line);
        let bank = &mut self.banks[b];
        let row_hit = bank.open_row == Some(row);
        let (access_latency, busy) = if row_hit {
            self.row_hits += 1;
            (self.row_hit_latency, self.row_hit_busy)
        } else {
            self.row_misses += 1;
            (self.row_miss_latency, self.row_miss_busy)
        };
        if tracer.enabled() {
            tracer.emit(
                now,
                TraceEvent::DramAccess {
                    partition: partition as u32,
                    line: req.line,
                    row_hit,
                    write: req.write,
                },
            );
        }
        bank.open_row = Some(row);
        bank.busy_until = now + busy;
        // Bank accesses overlap; the shared data bus serializes transfers.
        let transfer_start = (now + access_latency).max(self.bus_free_at);
        let data_ready = transfer_start + self.burst_cycles;
        self.bus_free_at = data_ready;
        self.serviced += 1;
        self.queue.remove(idx);
        if !req.write {
            self.done.push_back((data_ready, req));
        }
    }

    /// Pop a completed read whose data is ready at `now`.
    pub fn pop_done(&mut self, now: u64) -> Option<DramRequest> {
        if let Some(&(ready, req)) = self.done.front() {
            if ready <= now {
                self.done.pop_front();
                return Some(req);
            }
        }
        None
    }

    /// Outstanding queued + in-flight requests (observability).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.done.len()
    }

    /// Earliest cycle after `now` at which this partition could do something
    /// it cannot do at `now`: finish a transfer (`done` head becomes ready)
    /// or schedule a queued request (its bank frees up). `u64::MAX` when
    /// fully idle. Queued requests whose bank is already free are reported
    /// as `now + 1` — the caller only fast-forwards after a probe cycle in
    /// which FR-FCFS already made its one decision, so the next decision is
    /// next cycle. The shared data bus never gates *scheduling* (only the
    /// transfer start), so `bus_free_at` contributes nothing here.
    pub fn next_event_time(&self, now: u64) -> u64 {
        let mut wake = u64::MAX;
        if let Some(&(ready, _)) = self.done.front() {
            wake = wake.min(ready.max(now + 1));
        }
        for r in &self.queue {
            let b = self.bank_of(r.line);
            wake = wake.min(self.banks[b].busy_until.max(now + 1));
        }
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramPartition {
        DramPartition::new(4, 2048, 60, 180, 16, 56, 4, 8)
    }

    fn req(line: u64, id: u64) -> DramRequest {
        DramRequest {
            line,
            write: false,
            id,
        }
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        d.push(req(0, 1));
        d.cycle(0);
        assert_eq!(d.row_misses, 1);
        assert!(d.pop_done(0).is_none());
        assert!(d.pop_done(184).is_some()); // 180 + 4 burst
    }

    #[test]
    fn same_row_hits() {
        let mut d = dram();
        d.push(req(0, 1));
        d.push(req(128, 2)); // same 2 KB row, same bank
        d.cycle(0);
        // Bank occupied for the miss's busy window; then the hit issues.
        let mut t = 1;
        while d.serviced < 2 {
            d.cycle(t);
            t += 1;
            assert!(t < 1000);
        }
        assert!(t <= 60, "row hit should issue after tRC, took {t}");
        assert_eq!(d.row_hits, 1);
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn banks_pipeline_beyond_latency() {
        // 8 same-bank same-row requests: throughput set by busy (16), not
        // latency (60).
        let mut d = dram();
        let mut t = 0;
        for i in 0..8 {
            d.push(req(i * 128, i));
        }
        while d.serviced < 8 {
            d.cycle(t);
            t += 1;
            assert!(t < 2000);
        }
        assert!(t < 180 + 7 * 20, "pipelining broken: {t}");
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        d.push(req(0, 1));
        d.push(req(2048, 2)); // next bank
        d.cycle(0);
        d.cycle(1);
        // Both scheduled within 2 cycles (banks independent, bus staggers).
        assert_eq!(d.serviced, 2);
    }

    #[test]
    fn bus_limits_bandwidth() {
        let mut d = dram();
        for i in 0..4 {
            d.push(req(2048 * i, i)); // all different banks
        }
        let mut t = 0;
        while d.serviced < 4 {
            d.cycle(t);
            t += 1;
        }
        // The bus serializes: 4 bursts × 4 cycles each ⇒ ≥ 12 cycles of
        // scheduling even though banks are free.
        assert!(t >= 4, "bus should stagger requests, took {t}");
        assert!(d.bus_free_at >= 16);
    }

    #[test]
    fn writes_produce_no_response() {
        let mut d = dram();
        d.push(DramRequest {
            line: 0,
            write: true,
            id: 9,
        });
        d.cycle(0);
        for t in 0..1000 {
            assert!(d.pop_done(t).is_none());
        }
        assert_eq!(d.serviced, 1);
    }

    #[test]
    fn queue_capacity_respected() {
        let mut d = dram();
        for i in 0..8 {
            assert!(d.can_accept());
            d.push(req(i * 128, i));
        }
        assert!(!d.can_accept());
    }
}

.kernel fz85
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    add r3, r0, 23;
    and r4, r2, 1;
    setp.eq p0, r4, 1;
    @p0 bra L0;
    mad r5, r2, 1, 42;
    and r6, r5, 4095;
    mad r7, r6, 4, %p1;
    ld.global.b32 r8, [r7];
    and r9, r1, 15;
    setp.lt p1, r9, 8;
    @!p1 bra L1;
    and r10, r3, 63;
    setp.ne p2, r10, 58;
    @!p2 bra L2;
    and r11, r2, 15;
    mad r12, r0, 2, 20;
    mad r13, r12, 4, %p0;
    ld.global.b32 r14, [r13];
    add r15, r8, 60;
    bra L3;
L2:
    add r16, r1, 48;
L3:
    bra L4;
L1:
    xor r14, r14, r2;
    and r17, r1, 63;
    setp.ne p3, r17, 50;
    @!p3 bra L4;
    and r18, r2, 1023;
    rem r19, r14, 1;
    bra L4;
L4:
    bra L5;
L0:
    and r20, r18, 7;
    bra L5;
L5:
    and r21, r11, 3;
    setp.eq p4, r21, 1;
    @p4 bra L6;
    setp.eq p5, r21, 2;
    @p5 bra L7;
    setp.eq p6, r21, 3;
    @p6 bra L8;
    and r22, r15, 3;
    setp.ge p7, r22, 2;
    @!p7 bra L9;
    and r23, r8, 3;
    setp.ne p8, r23, 3;
    @!p8 bra L10;
    mad r24, r0, 2, 56;
    mad r25, r24, 4, %p0;
    ld.global.b32 r26, [r25];
    mad r27, r14, 1, 38;
    and r28, r27, 4095;
    mad r29, r28, 4, %p0;
    ld.global.b32 r30, [r29];
    bra L11;
L10:
    and r31, r15, r2;
    xor r31, r31, r0;
L11:
    mad r32, r0, 4, %p2;
    st.global.b32 [r32], r18;
    bra L9;
L9:
    bra L12;
L6:
    and r33, r26, 63;
    setp.ne p9, r33, 59;
    @!p9 bra L13;
    xor r16, r16, r15;
    bra L13;
L13:
    and r34, r30, 31;
    setp.eq p10, r34, 30;
    @!p10 bra L14;
    and r35, r15, 3;
    setp.eq p11, r35, 1;
    @p11 bra L15;
    setp.eq p12, r35, 2;
    @p12 bra L16;
    setp.eq p13, r35, 3;
    @p13 bra L17;
    mad r36, r15, 5, 49;
    and r37, r36, 4095;
    mad r38, r37, 4, %p1;
    ld.global.b32 r39, [r38];
    shr r40, r3, 1;
    bra L18;
L15:
    and r41, r39, 63;
    setp.eq p14, r41, 56;
    mad r42, r0, 4, %p2;
    @p14 st.global.b32 [r42], r20;
    bra L18;
L16:
    add r16, r16, r39;
    bra L18;
L17:
    mad r43, r0, 2, 63;
    mad r44, r43, 4, %p1;
    ld.global.b32 r45, [r44];
    add r46, r8, 52;
    bra L18;
L18:
    and r47, r20, 7;
    mov r48, 0;
L20:
    setp.ge p15, r48, r47;
    @p15 bra L19;
    add r49, r8, 33;
    add r50, r16, 39;
    add r48, r48, 1;
    bra L20;
L19:
    bra L21;
L14:
    xor r51, r31, r0;
    and r52, r11, 3;
    setp.gt p16, r52, 2;
    @!p16 bra L22;
    mad r53, r0, 1, 3;
    mad r54, r53, 4, %p1;
    ld.global.b32 r55, [r54];
    mad r56, r0, 4, %p2;
    st.global.b32 [r56], r39;
    shr r57, r49, 0;
    bra L21;
L22:
    xor r58, r31, 33;
    and r59, r46, 7;
    mad r60, r59, 4, %p3;
    and r61, r48, 65535;
    atom.min r62, [r60+0], r61;
L21:
    bra L12;
L7:
    mad r63, r0, 2, 32;
    mad r64, r63, 4, %p0;
    ld.global.b32 r65, [r64];
    and r66, r8, 63;
    setp.eq p17, r66, 7;
    sel r67, r0, r31, p17;
    bra L12;
L8:
    and r68, r58, 63;
    setp.ne p18, r68, 36;
    mad r69, r0, 4, %p2;
    @p18 st.global.b32 [r69], r19;
    bra L12;
L12:
    mad r70, r0, 4, 42;
    mad r71, r70, 4, %p0;
    ld.global.b32 r72, [r71];
    and r73, r45, 1;
    setp.lt p19, r73, 1;
    @!p19 bra L23;
    and r74, r45, 1;
    setp.lt p20, r74, 0;
    @!p20 bra L24;
    and r75, r49, 3;
    setp.ne p21, r75, 1;
    @!p21 bra L25;
    xor r76, r0, 100;
    and r77, r31, 15;
    setp.ne p22, r77, 12;
    sel r78, r40, r26, p22;
    bra L25;
L25:
    and r79, r39, 31;
    setp.ge p23, r79, 11;
    @!p23 bra L26;
    and r80, r20, 15;
    setp.ge p24, r80, 8;
    sel r81, r20, r49, p24;
    mad r82, r0, 4, 6;
    mad r83, r82, 4, %p1;
    ld.global.b32 r84, [r83];
    sub r85, r0, 40;
    bra L27;
L26:
    xor r86, r8, r18;
L27:
    and r87, r1, 31;
    setp.gt p25, r87, 13;
    @!p25 bra L28;
    add r88, r51, 4;
    rem r89, r76, 1;
    xor r90, r67, r3;
    bra L28;
L28:
    bra L29;
L24:
    mul r91, r78, r65;
L29:
    bra L30;
L23:
    and r92, r1, 63;
    setp.ne p26, r92, 8;
    @!p26 bra L30;
    mad r93, r0, 4, 9;
    mad r94, r93, 4, %p1;
    ld.global.b32 r95, [r94];
    bra L30;
L30:
    sub r96, r76, r84;
    and r97, r78, 7;
    mad r98, r97, 4, %p3;
    and r99, r20, 65535;
    atom.min r100, [r98+0], r99;
    and r101, r88, 3;
    setp.eq p27, r101, 1;
    @p27 bra L31;
    setp.eq p28, r101, 2;
    @p28 bra L32;
    setp.eq p29, r101, 3;
    @p29 bra L33;
    mov r102, 3;
    mov r103, 0;
L37:
    setp.ge p30, r103, r102;
    @p30 bra L34;
    and r104, r95, 7;
    setp.ne p31, r104, 7;
    @!p31 bra L35;
    and r105, r50, 63;
    setp.le p32, r105, 43;
    mad r106, r0, 4, %p2;
    @p32 st.global.b32 [r106], r39;
    add r107, r15, 10;
    bra L36;
L35:
    and r108, r2, 7;
    mad r109, r108, 4, %p3;
    and r110, r65, 65535;
    atom.min r111, [r109+0], r110;
    mul r112, r30, r86;
L36:
    mad r113, r0, 1, 5;
    mad r114, r113, 4, %p0;
    ld.global.b32 r115, [r114];
    add r103, r103, 1;
    bra L37;
L34:
    mul r116, r48, 4;
    bra L38;
L31:
    mad r117, r0, 4, %p2;
    st.global.b32 [r117], r81;
    bra L38;
L32:
    max r81, r81, r115;
    bra L38;
L33:
    mad r118, r16, 1, 6;
    and r119, r118, 4095;
    mad r120, r119, 4, %p0;
    ld.global.b32 r121, [r120];
    and r122, r48, 7;
    setp.gt p33, r122, 0;
    @!p33 bra L39;
    and r123, r85, 63;
    setp.lt p34, r123, 14;
    @!p34 bra L40;
    mad r124, r0, 1, 62;
    mad r125, r124, 4, %p0;
    ld.global.b32 r126, [r125];
    mad r127, r18, r40, r11;
    shl r128, r107, 3;
    bra L40;
L40:
    xor r115, r115, r126;
    and r129, r8, 7;
    mov r130, 0;
L42:
    setp.ge p35, r130, r129;
    @p35 bra L41;
    div r131, r20, r26;
    add r130, r130, 1;
    bra L42;
L41:
    bra L43;
L39:
    and r132, r50, 3;
    setp.lt p36, r132, 1;
    @!p36 bra L44;
    and r133, r48, r67;
    max r134, r121, r95;
    bra L45;
L44:
    and r135, r45, 255;
    cvt.f32.s64 r136, r135;
    mad.f32 r137, r136, 1082130432, 1086324736;
    cvt.s64.f32 r138, r137;
    and r139, r134, 7;
    mad r140, r139, 4, %p3;
    and r141, r30, 65535;
    atom.min r142, [r140+0], r141;
L45:
    mov r143, 5;
    mov r144, 0;
L46:
    setp.ge p37, r144, r143;
    @p37 bra L43;
    mul r145, r26, 7;
    mad r146, r0, 2, 16;
    mad r147, r146, 4, %p0;
    ld.global.b32 r148, [r147];
    and r149, r134, 7;
    mad r150, r149, 4, %p3;
    and r151, r112, 65535;
    atom.min r152, [r150+0], r151;
    add r144, r144, 1;
    bra L46;
L43:
    bra L38;
L38:
    and r153, r51, 3;
    setp.lt p38, r153, 3;
    @!p38 bra L47;
    shr r154, r127, 4;
    and r155, r112, 1;
    setp.eq p39, r155, 1;
    @p39 bra L48;
    and r156, r144, 3;
    setp.le p40, r156, 2;
    @!p40 bra L49;
    add r157, r19, 10;
    and r158, r11, 15;
    setp.eq p41, r158, 1;
    sel r159, r148, r112, p41;
    mad r160, r0, 1, 23;
    mad r161, r160, 4, %p0;
    ld.global.b32 r162, [r161];
    bra L50;
L49:
    mad r163, r0, 4, %p2;
    st.global.b32 [r163], r116;
    mad r164, r0, 4, %p2;
    st.global.b32 [r164], r40;
L50:
    and r165, r157, 1;
    setp.eq p42, r165, 1;
    @p42 bra L51;
    and r166, r15, 7;
    mad r167, r166, 4, %p3;
    and r168, r58, 65535;
    atom.min r169, [r167+0], r168;
    shr r170, r116, 1;
    bra L52;
L51:
    and r171, r133, 511;
    xor r172, r0, 144;
    bra L52;
L52:
    bra L53;
L48:
    min r67, r67, r30;
    and r173, r133, 1;
    setp.gt p43, r173, 1;
    @!p43 bra L54;
    and r174, r116, 255;
    cvt.f32.s64 r175, r174;
    mad.f32 r176, r175, 1084227584, 1077936128;
    cvt.s64.f32 r177, r176;
    bra L54;
L54:
    bra L53;
L53:
    and r178, r134, 7;
    mad r179, r178, 4, %p3;
    and r180, r85, 65535;
    atom.min r181, [r179+0], r180;
    bra L55;
L47:
    and r182, r19, 63;
    setp.le p44, r182, 17;
    @!p44 bra L56;
    and r183, r50, 63;
    setp.eq p45, r183, 54;
    @!p45 bra L57;
    and r184, r20, 7;
    mad r185, r184, 4, %p3;
    and r186, r3, 65535;
    atom.min r187, [r185+0], r186;
    bra L58;
L57:
    and r188, r133, 1;
    setp.le p46, r188, 1;
    sel r189, r3, r170, p46;
    shr r190, r72, 0;
L58:
    and r191, r154, 63;
    setp.ne p47, r191, 9;
    @!p47 bra L59;
    mad r192, r0, 1, 53;
    mad r193, r192, 4, %p0;
    ld.global.b32 r194, [r193];
    mul r195, r11, 5;
    bra L60;
L59:
    mad r196, r0, 2, 60;
    mad r197, r196, 4, %p0;
    ld.global.b32 r198, [r197];
    mad r199, r0, 2, 1;
    and r200, r199, 4095;
    mad r201, r200, 4, %p0;
    ld.global.b32 r202, [r201];
L60:
    and r203, r76, 7;
    mad r204, r203, 4, %p3;
    and r205, r48, 65535;
    atom.min r206, [r204+0], r205;
    bra L55;
L56:
    and r207, r78, 63;
    setp.eq p48, r207, 42;
    @!p48 bra L61;
    mad r208, r45, 8, 34;
    and r209, r208, 4095;
    mad r210, r209, 4, %p1;
    ld.global.b32 r211, [r210];
    add r212, r65, 24;
    bra L55;
L61:
    mad r213, r0, 4, 14;
    mad r214, r213, 4, %p0;
    ld.global.b32 r215, [r214];
    sub r216, r144, 5;
L55:
    and r217, r154, 15;
    setp.ne p49, r217, 4;
    @!p49 bra L62;
    mad r218, r0, 1, 29;
    mad r219, r218, 4, %p1;
    ld.global.b32 r220, [r219];
    bra L63;
L62:
    and r221, r49, 1;
    setp.gt p50, r221, 0;
    sel r222, r49, r91, p50;
    mad r223, r154, 8, 49;
    and r224, r223, 4095;
    mad r225, r224, 4, %p0;
    and r226, r133, 1;
    setp.le p51, r226, 1;
    @p51 ld.global.b32 r227, [r225];
L63:
    mad r228, r157, 7, 56;
    and r229, r228, 4095;
    mad r230, r229, 4, %p1;
    ld.global.b32 r231, [r230];
    mad r232, r0, 4, %p2;
    st.global.b32 [r232], r231;
    exit;

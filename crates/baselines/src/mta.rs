//! Many-Thread Aware prefetching (MTA) — the paper's GPU-prefetcher
//! baseline after Lee et al. \[15\], provisioned with a dedicated 16 KB
//! per-SM prefetch buffer (Table 1).
//!
//! MTA trains per-load-PC stride tables from the accesses of a few warps,
//! then speculatively generalizes: it predicts both *intra-warp* strides
//! (the same warp's successive accesses, e.g. a load in a loop) and
//! *inter-warp* deltas (the offset between adjacent warps' accesses to the
//! same PC). Prefetches fill the dedicated buffer; a throttling controller
//! watches the buffer's evicted-but-unused rate and scales the prefetch
//! degree down when pollution rises (§5.5).

use simt_ir::{Instr, Program, Space};
use simt_mem::{AccessOutcome, Client, MemRequest, ReqKind};
use simt_sim::{CoCtx, CoProcessor, SimStats};
use std::collections::{HashMap, VecDeque};

/// MTA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtaConfig {
    /// Maximum prefetch degree (lines ahead per trained access).
    pub max_degree: u32,
    /// Throttle evaluation period in cycles.
    pub throttle_period: u64,
    /// Unused-eviction ratio above which the degree is lowered.
    pub pollution_threshold: f64,
    /// Per-SM queue of not-yet-issued prefetches.
    pub queue_capacity: usize,
}

impl Default for MtaConfig {
    fn default() -> Self {
        MtaConfig {
            max_degree: 1,
            throttle_period: 2048,
            pollution_threshold: 0.3,
            queue_capacity: 64,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct PcEntry {
    /// Last line accessed per warp.
    last: HashMap<usize, u64>,
    /// Detected intra-warp stride per warp (line units may be negative).
    stride: HashMap<usize, i64>,
    /// Stride confirmation count per warp.
    confidence: HashMap<usize, u8>,
    /// First-touch lines in warp order, for the inter-warp delta.
    first_touches: Vec<(usize, u64)>,
    /// Trained inter-warp delta (bytes between adjacent warps).
    inter_delta: Option<i64>,
}

#[derive(Debug, Default)]
struct SmMta {
    table: HashMap<usize, PcEntry>,
    queue: VecDeque<u64>,
    /// Prefetch popped from the queue head this cycle, occupying the port
    /// latch until the fabric accepts it (`pump` re-queues it at the front
    /// on a structural stall). While latched it frees its queue slot and is
    /// invisible to the duplicate check — the latch is port state, not a
    /// queue entry — which keeps enqueue decisions independent of fabric
    /// admission and therefore identical across thread counts.
    pending_pump: Option<u64>,
    last_eval: u64,
    last_unused: u64,
    last_fills: u64,
    degree: u32,
    predicted: u64,
    throttled: u64,
}

/// The MTA prefetcher coprocessor.
#[derive(Debug)]
pub struct Mta {
    cfg: MtaConfig,
    sms: Vec<SmMta>,
}

impl Mta {
    /// Build an MTA prefetcher.
    pub fn new(cfg: MtaConfig) -> Self {
        Mta {
            cfg,
            sms: Vec::new(),
        }
    }

    /// Total prefetch lines enqueued across all SMs (before fabric issue).
    pub fn predicted(&self) -> u64 {
        self.sms.iter().map(|s| s.predicted).sum()
    }

    /// Throttle-downs applied across all SMs.
    pub fn throttled(&self) -> u64 {
        self.sms.iter().map(|s| s.throttled).sum()
    }

    fn enqueue(&mut self, sm: usize, line: i128) {
        if line < 0 {
            return;
        }
        let cap = self.cfg.queue_capacity;
        let s = &mut self.sms[sm];
        if s.queue.len() < cap && !s.queue.contains(&(line as u64)) {
            s.queue.push_back(line as u64);
            s.predicted += 1;
        }
    }
}

impl Default for Mta {
    fn default() -> Self {
        Self::new(MtaConfig::default())
    }
}

impl CoProcessor for Mta {
    fn name(&self) -> &'static str {
        "mta"
    }

    fn on_kernel_launch(&mut self, _program: &Program, num_sms: usize) {
        self.sms = (0..num_sms)
            .map(|_| SmMta {
                degree: self.cfg.max_degree,
                ..Default::default()
            })
            .collect();
    }

    fn can_issue(
        &mut self,
        _sm: usize,
        _warp: usize,
        _instr: &Instr,
        _stats: &mut SimStats,
    ) -> bool {
        true
    }

    fn observe_mem(
        &mut self,
        sm: usize,
        warp: usize,
        pc: usize,
        space: Space,
        is_store: bool,
        lines: &[u64],
    ) {
        if is_store || space == Space::Shared || lines.is_empty() {
            return;
        }
        let line = lines[0];
        let degree;
        let mut predictions: Vec<i128> = Vec::new();
        {
            let s = &mut self.sms[sm];
            degree = s.degree;
            let e = s.table.entry(pc).or_default();
            // Intra-warp stride training.
            if let Some(&prev) = e.last.get(&warp) {
                let stride = line as i64 - prev as i64;
                if stride != 0 {
                    match e.stride.get(&warp) {
                        Some(&st) if st == stride => {
                            let c = e.confidence.entry(warp).or_insert(0);
                            *c = c.saturating_add(1);
                        }
                        _ => {
                            e.stride.insert(warp, stride);
                            e.confidence.insert(warp, 0);
                        }
                    }
                    if e.confidence.get(&warp).copied().unwrap_or(0) >= 1 {
                        // Skip the immediately-next access (a prefetch for
                        // it would arrive too late) and run further ahead.
                        for d in 2..=(degree as i64 + 1) {
                            predictions.push(line as i128 + (stride * d) as i128);
                        }
                    }
                }
            } else {
                // First touch: train / use the inter-warp delta.
                e.first_touches.push((warp, line));
                if e.inter_delta.is_none() && e.first_touches.len() >= 2 {
                    let (w0, l0) = e.first_touches[0];
                    let (w1, l1) = e.first_touches[1];
                    if w1 != w0 {
                        let d = (l1 as i64 - l0 as i64) / (w1 as i64 - w0 as i64);
                        if d != 0 {
                            e.inter_delta = Some(d);
                        }
                    }
                }
                if let Some(d) = e.inter_delta {
                    for k in 1..=degree as i64 {
                        predictions.push(line as i128 + (d * k) as i128);
                    }
                }
            }
            e.last.insert(warp, line);
        }
        for p in predictions {
            self.enqueue(sm, p);
        }
    }

    fn step(&mut self, ctx: &mut CoCtx<'_>) {
        let sm = ctx.sm;
        if self.sms.is_empty() {
            return;
        }
        // Throttle: compare the prefetch buffer's unused-eviction rate.
        // The counters move only during the fabric cycle, so the post-fabric
        // snapshot in `ctx.pbuf_stats` (requested via `wants_pbuf_stats`)
        // equals what a direct read would see.
        let (period, threshold) = (self.cfg.throttle_period, self.cfg.pollution_threshold);
        if let Some((pbuf_unused, pbuf_fills)) = ctx.pbuf_stats {
            let s = &mut self.sms[sm];
            if ctx.now.saturating_sub(s.last_eval) >= period {
                s.last_eval = ctx.now;
                let unused = pbuf_unused.saturating_sub(s.last_unused);
                let fills = pbuf_fills.saturating_sub(s.last_fills);
                s.last_unused = pbuf_unused;
                s.last_fills = pbuf_fills;
                if fills > 8 {
                    let ratio = unused as f64 / fills as f64;
                    if ratio > threshold && s.degree > 1 {
                        s.degree -= 1;
                        s.throttled += 1;
                    } else if ratio < threshold / 2.0 && s.degree < self.cfg.max_degree {
                        s.degree += 1;
                    }
                }
            }
        }
        // Latch one prefetch per cycle into the port latch; `pump` submits
        // it to the fabric in the replay phase.
        let s = &mut self.sms[sm];
        debug_assert!(s.pending_pump.is_none(), "pump did not drain the latch");
        s.pending_pump = s.queue.pop_front();
    }

    /// Submit the latched prefetch. Inter-warp deltas are trained by
    /// dividing line addresses by warp distance, so a predicted address can
    /// fall mid-line; prefetch the containing line. On a structural stall
    /// the prediction returns to the queue head for retry next cycle.
    fn pump(
        &mut self,
        sm: usize,
        now: u64,
        fabric: &mut simt_mem::MemoryFabric,
        stats: &mut SimStats,
        tracer: &mut dyn simt_trace::Tracer,
    ) {
        if self.sms.is_empty() {
            return;
        }
        let line_bytes = fabric.config().line_bytes;
        let s = &mut self.sms[sm];
        let Some(predicted) = s.pending_pump.take() else {
            return;
        };
        let req = MemRequest {
            sm,
            line: predicted & !(line_bytes - 1),
            kind: ReqKind::Prefetch,
            client: Client::Mta,
            token: 0,
        };
        match fabric.access_traced(now, req, tracer) {
            AccessOutcome::Accepted => {
                stats.prefetches_issued += 1;
            }
            AccessOutcome::Stall(_) => {
                self.sms[sm].queue.push_front(predicted);
            }
        }
    }

    /// The throttle evaluation is the only consumer of the prefetch-buffer
    /// counter snapshot; ask for it exactly on evaluation deadlines.
    fn wants_pbuf_stats(&self, now: u64) -> bool {
        self.sms
            .iter()
            .any(|s| now.saturating_sub(s.last_eval) >= self.cfg.throttle_period)
    }

    /// The throttle re-evaluation is MTA's only time-driven state: each SM's
    /// next deadline is `last_eval + throttle_period`. Everything else in
    /// `step` (the one-prefetch-per-cycle issue with its stall-and-retry) is
    /// either idempotent across idle cycles or surfaces as fabric progress.
    fn ff_wake(&self, now: u64) -> u64 {
        let _ = now;
        self.sms
            .iter()
            .map(|s| s.last_eval + self.cfg.throttle_period)
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{CmpOp, Dim3, KernelBuilder, LaunchConfig, Op, Operand, Program, Width};
    use simt_mem::{MemConfig, SparseMemory};
    use simt_sim::{GpuConfig, GpuSim};

    /// Strided streaming loop: ideal prefetcher food.
    fn streaming_loop_kernel() -> simt_ir::Kernel {
        let mut b = KernelBuilder::new("stream", 4);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let pb = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        let stride = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
        let i = b.mov(Operand::Imm(0));
        b.label("loop");
        let v = b.ld(simt_ir::Space::Global, pa, 0, Width::W32);
        let v2 = b.alu2(Op::Add, Operand::Reg(v), Operand::Imm(1));
        b.st(simt_ir::Space::Global, pb, 0, Operand::Reg(v2), Width::W32);
        b.alu_into(pa, Op::Add, &[Operand::Reg(pa), Operand::Reg(stride)]);
        b.alu_into(pb, Op::Add, &[Operand::Reg(pb), Operand::Reg(stride)]);
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
        b.bra_if(p, "loop");
        b.exit();
        b.build()
    }

    fn pf_gpu() -> GpuSim {
        GpuSim::new(GpuConfig {
            mem: MemConfig::gtx480_with_prefetch_buffer(),
            ..GpuConfig::test_small()
        })
    }

    #[test]
    fn mta_trains_and_covers_streaming_loop() {
        let k = streaming_loop_kernel();
        let iters = 16u64;
        let num = 512u64;
        let launch = LaunchConfig {
            grid: Dim3::x(4),
            block: Dim3::x(128),
            params: vec![0x100_0000, 0x200_0000, iters, num],
        };
        let n = (iters * num) as usize;
        let prog = Program::new(k, launch).unwrap();
        let input: Vec<u32> = (0..n as u32).collect();

        let gpu = GpuSim::new(GpuConfig::test_small());
        let mut mem_b = SparseMemory::new();
        mem_b.write_u32_slice(0x100_0000, &input);
        let base = gpu.run(&prog, &mut mem_b);

        let mut mem_m = SparseMemory::new();
        mem_m.write_u32_slice(0x100_0000, &input);
        let mut mta = Mta::default();
        let rep = pf_gpu().run_with(&prog, &mut mem_m, &mut mta);

        // Correctness unchanged (prefetching is invisible).
        assert_eq!(
            mem_b.read_u32_vec(0x200_0000, n),
            mem_m.read_u32_vec(0x200_0000, n)
        );
        assert!(rep.stats.prefetches_issued > 0, "no prefetches issued");
        assert!(rep.mem.pbuf_hits > 0, "no prefetch-buffer hits");
        assert!(
            rep.cycles < base.cycles,
            "MTA {} !< baseline {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn stride_training_needs_confirmation() {
        let mut mta = Mta::default();
        let prog = Program::new(
            {
                let mut b = KernelBuilder::new("x", 0);
                b.exit();
                b.build()
            },
            LaunchConfig::linear(1, 32, vec![]),
        )
        .unwrap();
        mta.on_kernel_launch(&prog, 1);
        // First access: first-touch only, no stride prediction.
        mta.observe_mem(0, 0, 5, Space::Global, false, &[0x1000]);
        assert_eq!(mta.predicted(), 0);
        // Second access establishes a stride but without confirmation.
        mta.observe_mem(0, 0, 5, Space::Global, false, &[0x1080]);
        assert_eq!(mta.predicted(), 0);
        // Third confirms: predictions fire.
        mta.observe_mem(0, 0, 5, Space::Global, false, &[0x1100]);
        assert!(mta.predicted() > 0);
    }

    #[test]
    fn inter_warp_delta_seeds_other_warps() {
        let mut mta = Mta::default();
        let prog = Program::new(
            {
                let mut b = KernelBuilder::new("x", 0);
                b.exit();
                b.build()
            },
            LaunchConfig::linear(1, 32, vec![]),
        )
        .unwrap();
        mta.on_kernel_launch(&prog, 1);
        // Warps 0 and 1 touch consecutive lines at the same PC.
        mta.observe_mem(0, 0, 9, Space::Global, false, &[0x0]);
        mta.observe_mem(0, 1, 9, Space::Global, false, &[0x80]);
        // Delta = 0x80/warp: warp 1's first touch predicts for warps 2+.
        assert!(mta.predicted() > 0);
        let lines: Vec<u64> = mta.sms[0].queue.iter().copied().collect();
        assert!(lines.contains(&0x100));
    }

    #[test]
    fn stores_and_shared_ignored() {
        let mut mta = Mta::default();
        let prog = Program::new(
            {
                let mut b = KernelBuilder::new("x", 0);
                b.exit();
                b.build()
            },
            LaunchConfig::linear(1, 32, vec![]),
        )
        .unwrap();
        mta.on_kernel_launch(&prog, 1);
        for i in 0..4u64 {
            mta.observe_mem(0, 0, 1, Space::Global, true, &[0x80 * i]);
            mta.observe_mem(0, 0, 2, Space::Shared, false, &[0x80 * i]);
        }
        assert_eq!(mta.predicted(), 0);
    }
}

//! The functional oracle: a per-thread reference interpreter.
//!
//! Executes a kernel one thread at a time over a [`SparseMemory`] image,
//! using the same `ir::eval` ALU as the simulator. Because the generator's
//! grammar guarantees order-independent memory effects (read-only inputs,
//! per-thread-unique stores, commutative bounded atomics), the sequential
//! per-thread result must be bit-identical to any SIMT interleaving — which
//! is exactly what the differential driver asserts.
//!
//! Semantics mirror `simt_sim::sm` exec paths instruction by instruction:
//! registers initialize to zero, guards mask execution, `setp` compares
//! i64 (or f32 on bit patterns), addresses are `reg + disp` wrapping, loads
//! and stores move `width.bytes()` little-endian bytes, and atomics are
//! 32-bit RMWs that compare sign-extended but store truncated.

use simt_ir::instr::Guard;
use simt_ir::{
    eval, AddrMode, AtomOp, Instr, Kernel, LaunchConfig, Operand, PredSrc, Space, SpecialReg, Value,
};
use simt_mem::SparseMemory;

/// Why the oracle refused or aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// A thread ran more than the step limit (runaway loop).
    StepLimit { cta: u64, thread: u64 },
    /// The kernel uses a feature outside the oracle contract.
    Unsupported { pc: usize, what: String },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::StepLimit { cta, thread } => {
                write!(f, "oracle step limit exceeded (cta {cta}, thread {thread})")
            }
            OracleError::Unsupported { pc, what } => {
                write!(f, "oracle: unsupported at pc {pc}: {what}")
            }
        }
    }
}

const STEP_LIMIT: u64 = 200_000;

/// Run every thread of `kernel` under `launch` against `mem`.
pub fn run_oracle(
    kernel: &Kernel,
    launch: &LaunchConfig,
    mem: &mut SparseMemory,
) -> Result<(), OracleError> {
    for cta in 0..launch.grid.count() {
        let coords = launch.grid.unflatten(cta);
        for t in 0..launch.block.count() {
            run_thread(kernel, launch, mem, cta, coords, t)?;
        }
    }
    Ok(())
}

fn run_thread(
    kernel: &Kernel,
    launch: &LaunchConfig,
    mem: &mut SparseMemory,
    cta: u64,
    cta_coords: (u32, u32, u32),
    t: u64,
) -> Result<(), OracleError> {
    let (tx, ty, tz) = launch.block.unflatten(t);
    let mut regs = vec![0u64; kernel.num_regs as usize];
    let mut preds = vec![false; kernel.num_preds.max(1) as usize];
    let mut pc = 0usize;
    let mut steps = 0u64;

    let operand = |regs: &[u64], op: Operand| -> Value {
        match op {
            Operand::Reg(r) => regs[r as usize],
            Operand::Imm(i) => i as Value,
            Operand::Param(p) => launch.params[p as usize],
            Operand::Special(s) => {
                let v = match s {
                    SpecialReg::TidX => tx,
                    SpecialReg::TidY => ty,
                    SpecialReg::TidZ => tz,
                    SpecialReg::CtaIdX => cta_coords.0,
                    SpecialReg::CtaIdY => cta_coords.1,
                    SpecialReg::CtaIdZ => cta_coords.2,
                    SpecialReg::NTidX => launch.block.x,
                    SpecialReg::NTidY => launch.block.y,
                    SpecialReg::NTidZ => launch.block.z,
                    SpecialReg::NCtaIdX => launch.grid.x,
                    SpecialReg::NCtaIdY => launch.grid.y,
                    SpecialReg::NCtaIdZ => launch.grid.z,
                };
                v as Value
            }
        }
    };
    let pass = |preds: &[bool], g: &Option<Guard>| -> bool {
        match g {
            None => true,
            Some(g) => preds[g.pred as usize] != g.negate,
        }
    };

    loop {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(OracleError::StepLimit { cta, thread: t });
        }
        let instr = &kernel.instrs[pc];
        match instr {
            Instr::Alu {
                op,
                dst,
                srcs,
                guard,
            } => {
                if pass(&preds, guard) {
                    let a = operand(&regs, srcs[0]);
                    let b = operand(&regs, srcs[1]);
                    let c = operand(&regs, srcs[2]);
                    regs[*dst as usize] = eval::eval(*op, a, b, c);
                }
                pc += 1;
            }
            Instr::SetP {
                dst,
                cmp,
                a,
                b,
                float,
                guard,
            } => {
                if pass(&preds, guard) {
                    let av = operand(&regs, *a);
                    let bv = operand(&regs, *b);
                    preds[*dst as usize] = if *float {
                        cmp.eval_f32(f32::from_bits(av as u32), f32::from_bits(bv as u32))
                    } else {
                        cmp.eval_i64(av as i64, bv as i64)
                    };
                }
                pc += 1;
            }
            Instr::Sel { dst, pred, a, b } => {
                let cond = preds[pred.pred as usize] != pred.negate;
                let v = if cond {
                    operand(&regs, *a)
                } else {
                    operand(&regs, *b)
                };
                regs[*dst as usize] = v;
                pc += 1;
            }
            Instr::Ld {
                dst,
                space,
                addr,
                width,
                guard,
            } => {
                if *space != Space::Global {
                    return Err(OracleError::Unsupported {
                        pc,
                        what: format!("ld.{space}"),
                    });
                }
                if pass(&preds, guard) {
                    let a = resolve(&regs, addr, pc)?;
                    regs[*dst as usize] = mem.read_bytes(a, width.bytes() as usize);
                }
                pc += 1;
            }
            Instr::St {
                space,
                addr,
                src,
                width,
                guard,
            } => {
                if *space != Space::Global {
                    return Err(OracleError::Unsupported {
                        pc,
                        what: format!("st.{space}"),
                    });
                }
                if pass(&preds, guard) {
                    let a = resolve(&regs, addr, pc)?;
                    let v = operand(&regs, *src);
                    mem.write_bytes(a, v, width.bytes() as usize);
                }
                pc += 1;
            }
            Instr::Atom {
                op,
                dst,
                addr,
                src,
                guard,
            } => {
                if pass(&preds, guard) {
                    let a = resolve(&regs, addr, pc)?;
                    let old = mem.read_u32(a) as u64;
                    let v = operand(&regs, *src);
                    let new = match op {
                        AtomOp::Add => (old as u32).wrapping_add(v as u32) as u64,
                        AtomOp::Min => (old as i64).min(v as i64) as u64,
                        AtomOp::Max => (old as i64).max(v as i64) as u64,
                        AtomOp::Exch => v,
                    };
                    mem.write_u32(a, new as u32);
                    regs[*dst as usize] = old;
                }
                pc += 1;
            }
            Instr::Bra { target, pred } => {
                let taken = match pred {
                    None => true,
                    Some(PredSrc::Reg(g)) => preds[g.pred as usize] != g.negate,
                    Some(PredSrc::Deq { .. }) => {
                        return Err(OracleError::Unsupported {
                            pc,
                            what: "deq.pred branch".into(),
                        })
                    }
                };
                pc = if taken { *target } else { pc + 1 };
            }
            Instr::Bar => {
                // The oracle contract forbids inter-thread communication, so
                // a barrier is a no-op for a sequential executor.
                pc += 1;
            }
            Instr::Exit => return Ok(()),
            Instr::Enq { .. } => {
                return Err(OracleError::Unsupported {
                    pc,
                    what: "enq in vector stream".into(),
                })
            }
        }
    }
}

fn resolve(regs: &[u64], addr: &AddrMode, pc: usize) -> Result<u64, OracleError> {
    match addr {
        AddrMode::Reg(r, disp) => Ok(regs[*r as usize].wrapping_add(*disp as u64)),
        AddrMode::DeqData | AddrMode::DeqAddr => Err(OracleError::Unsupported {
            pc,
            what: "deq address mode".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::kernels::ARR_C;
    use simt_ir::{CmpOp, KernelBuilder, Op, Width};

    /// `C[tid] = tid*3 + 7` for 2 CTAs × 48 threads.
    #[test]
    fn affine_store_matches_hand_computation() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.tid_linear_x();
        let v = b.alu3(Op::Mad, Operand::Reg(tid), Operand::Imm(3), Operand::Imm(7));
        let addr = b.alu3(
            Op::Mad,
            Operand::Reg(tid),
            Operand::Imm(4),
            Operand::Param(0),
        );
        b.st(Space::Global, addr, 0, Operand::Reg(v), Width::W32);
        b.exit();
        let k = b.build();
        let launch = LaunchConfig::linear(2, 48, vec![ARR_C]);
        let mut mem = SparseMemory::new();
        run_oracle(&k, &launch, &mut mem).unwrap();
        for t in 0..96u64 {
            assert_eq!(mem.read_u32(ARR_C + t * 4), (t * 3 + 7) as u32);
        }
    }

    /// Divergent loop: each thread iterates `tid & 3` times, accumulating.
    #[test]
    fn divergent_loop_trip_counts() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.tid_linear_x();
        let n = b.alu2(Op::And, Operand::Reg(tid), Operand::Imm(3));
        let i = b.mov(Operand::Imm(0));
        let acc = b.mov(Operand::Imm(0));
        b.label("top");
        let p = b.setp(CmpOp::Ge, Operand::Reg(i), Operand::Reg(n));
        b.bra_if(p, "done");
        b.alu_into(acc, Op::Add, &[Operand::Reg(acc), Operand::Imm(10)]);
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        b.bra("top");
        b.label("done");
        let addr = b.alu3(
            Op::Mad,
            Operand::Reg(tid),
            Operand::Imm(4),
            Operand::Param(0),
        );
        b.st(Space::Global, addr, 0, Operand::Reg(acc), Width::W32);
        b.exit();
        let k = b.build();
        let launch = LaunchConfig::linear(1, 64, vec![ARR_C]);
        let mut mem = SparseMemory::new();
        run_oracle(&k, &launch, &mut mem).unwrap();
        for t in 0..64u64 {
            assert_eq!(mem.read_u32(ARR_C + t * 4), ((t & 3) * 10) as u32);
        }
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut b = KernelBuilder::new("k", 0);
        b.label("top");
        b.bra("top");
        b.exit();
        let k = b.build();
        let launch = LaunchConfig::linear(1, 32, vec![]);
        let mut mem = SparseMemory::new();
        assert!(matches!(
            run_oracle(&k, &launch, &mut mem),
            Err(OracleError::StepLimit { .. })
        ));
    }
}

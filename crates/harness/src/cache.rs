//! Content-addressed result cache.
//!
//! Every simulation is deterministic, so a result is fully determined by
//! its job's canonical key (workload, scale, design, relevant overrides,
//! cache version — see [`Job::cache_key`]). Entries live one-per-file under
//! the cache directory, named by the FNV-1a hash of the key; the full key
//! is stored inside the entry and verified on load, so a hash collision
//! degrades to a cache miss instead of returning a wrong result.

use crate::artifact;
use crate::job::{Job, JobResult};
use crate::json;
use std::fs;
use std::path::{Path, PathBuf};

fn count(name: &'static str, help: &'static str) {
    simt_obs::metrics::global().counter_add(name, help, &[], 1);
}

/// 64-bit FNV-1a. Stable across platforms and releases — cache file names
/// and output digests must not change under us (unlike `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An on-disk result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The default location, `results/cache/`, relative to the repo root
    /// (or whatever the current directory is).
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results").join("cache")
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of the entry for `key` (whether or not it exists).
    /// File names are the FNV-1a hash of the canonical key — the same hash
    /// [`entry_path_for_hash`](ResultCache::entry_path_for_hash) addresses,
    /// which is how the sweep service serves `GET /runs/:key`.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.entry_path_for_hash(fnv1a64(key.as_bytes()))
    }

    /// The on-disk path of the entry named by a key hash.
    pub fn entry_path_for_hash(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Read the raw JSON record stored under a key hash, if present and
    /// well-formed (`dac-run/v1` with a matching embedded key hash). Used
    /// by the sweep service to serve cached artifacts without re-encoding.
    pub fn load_raw_by_hash(&self, hash: u64) -> Option<String> {
        let path = self.entry_path_for_hash(hash);
        let text = fs::read_to_string(&path).ok()?;
        let parsed = json::parse(&text)
            .ok()
            .filter(|v| match artifact::from_json(v) {
                Ok((key, _)) => fnv1a64(key.as_bytes()) == hash,
                Err(_) => false,
            });
        if parsed.is_none() {
            self.evict_corrupt(&path, hash);
            return None;
        }
        Some(text)
    }

    /// Look up a job. A missing file is a plain miss; a file that exists
    /// but does not parse back to this job's key (truncated write, disk
    /// corruption, stale schema) is **evicted** — warned about once and
    /// deleted — so the run recomputes it instead of tripping over the
    /// same bad bytes on every sweep. The cache never fails a run.
    pub fn load(&self, job: &Job) -> Option<JobResult> {
        let key = job.cache_key();
        let hash = fnv1a64(key.as_bytes());
        let path = self.entry_path_for_hash(hash);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                count(
                    "simt_cache_misses_total",
                    "Result-cache lookups that missed.",
                );
                return None; // plain miss: nothing stored
            }
        };
        let result = json::parse(&text)
            .ok()
            .and_then(|v| artifact::from_json(&v).ok())
            .and_then(|(stored_key, result)| (stored_key == key).then_some(result));
        match &result {
            Some(_) => count(
                "simt_cache_hits_total",
                "Result-cache lookups served from disk.",
            ),
            None => {
                // The entry exists but is unusable (a hash collision also lands
                // here — indistinguishable from corruption, and equally safe to
                // recompute). Evict it so the fresh result can take its place.
                self.evict_corrupt(&path, hash);
                count(
                    "simt_cache_misses_total",
                    "Result-cache lookups that missed.",
                );
            }
        }
        result
    }

    fn evict_corrupt(&self, path: &Path, hash: u64) {
        count(
            "simt_cache_evictions_total",
            "Corrupt result-cache entries evicted and recomputed.",
        );
        simt_obs::warn!("harness.cache", "evicting corrupt cache entry (recomputing)";
            path = path.display().to_string(), hash = format!("{hash:016x}"));
        if let Err(e) = fs::remove_file(path) {
            simt_obs::warn!("harness.cache", "could not remove corrupt cache entry";
                path = path.display().to_string(), error = e.to_string());
        }
    }

    /// Store a fresh result. Write failures are reported but non-fatal
    /// (a read-only checkout still runs, just without caching); writes go
    /// through a temp file + rename so concurrent invocations never observe
    /// a torn entry.
    pub fn store(&self, job: &Job, result: &JobResult) {
        let key = job.cache_key();
        let path = self.entry_path(&key);
        let record = artifact::to_json(job, result, None, Some(&key)).to_json();
        let write = || -> std::io::Result<()> {
            fs::create_dir_all(&self.dir)?;
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            fs::write(&tmp, record.as_bytes())?;
            fs::rename(&tmp, &path)
        };
        match write() {
            Ok(()) => count(
                "simt_cache_stores_total",
                "Fresh results written to the cache.",
            ),
            Err(e) => {
                simt_obs::warn!("harness.cache", "cache write failed";
                    path = path.display().to_string(), error = e.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DesignPoint;
    use gpu_workloads::{benchmark, Design};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dac-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_job() -> Job {
        let mut job = Job::new(
            Arc::new(benchmark("LIB", 1).unwrap()),
            1,
            DesignPoint::Hw(Design::Baseline),
        );
        job.overrides.num_sms = Some(2);
        job.overrides.max_warps_per_sm = Some(16);
        job
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let job = small_job();
        assert!(cache.load(&job).is_none(), "cold cache must miss");
        let result = job.execute();
        cache.store(&job, &result);
        let hit = cache.load(&job).expect("warm cache must hit");
        assert!(hit.cached);
        assert_eq!(hit.report.cycles, result.report.cycles);
        assert_eq!(hit.report.stats, result.report.stats);
        assert_eq!(hit.report.mem, result.report.mem);
        assert_eq!(hit.output_digest, result.output_digest);
        // A different design misses even with the store populated.
        let other = Job {
            point: DesignPoint::PerfectMem,
            ..job.clone()
        };
        assert!(cache.load(&other).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted_and_recomputable() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir);
        let job = small_job();
        let result = job.execute();
        cache.store(&job, &result);
        let path = cache.entry_path(&job.cache_key());

        // Truncated JSON (torn write): miss, and the bad file is evicted so
        // the recomputed result can be stored cleanly.
        fs::write(&path, b"{ not json").unwrap();
        assert!(cache.load(&job).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");

        // A fresh store + load works again after eviction.
        cache.store(&job, &result);
        assert!(cache.load(&job).is_some());

        // Key mismatch (simulated collision) is also evicted.
        let record =
            artifact::to_json(&job, &result, None, Some("dac-cache-v0|bench=???")).to_json();
        fs::write(&path, record).unwrap();
        assert!(cache.load(&job).is_none());
        assert!(!path.exists());

        // A missing entry is a plain miss: nothing to evict, no warning.
        assert!(cache.load(&job).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_access_by_hash() {
        let dir = tmp_dir("raw");
        let cache = ResultCache::new(&dir);
        let job = small_job();
        let result = job.execute();
        cache.store(&job, &result);
        let hash = fnv1a64(job.cache_key().as_bytes());
        let text = cache.load_raw_by_hash(hash).expect("raw entry readable");
        let (key, loaded) = artifact::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(key, job.cache_key());
        assert_eq!(loaded.report.cycles, result.report.cycles);
        // Unknown hash: None. Corrupt entry: evicted + None.
        assert!(cache.load_raw_by_hash(hash ^ 1).is_none());
        fs::write(cache.entry_path_for_hash(hash), b"garbage").unwrap();
        assert!(cache.load_raw_by_hash(hash).is_none());
        assert!(!cache.entry_path_for_hash(hash).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

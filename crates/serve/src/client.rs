//! The tiny blocking HTTP client behind `sweepctl` and the end-to-end
//! tests. Speaks exactly the dialect [`crate::http`] serves: HTTP/1.1,
//! `Connection: close`, JSON bodies.

use simt_harness::json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response: HTTP status plus the parsed JSON body.
#[derive(Debug)]
pub struct ApiResponse {
    pub status: u16,
    pub body: json::Value,
    /// The body exactly as received (for `sweepctl fetch`, which must
    /// write artifacts byte-identical to what the store holds).
    pub raw: String,
}

impl ApiResponse {
    /// The body if the request succeeded, else `Err` with the server's
    /// error message (or the status line when there is none).
    pub fn ok(self) -> Result<json::Value, String> {
        if self.status == 200 {
            Ok(self.body)
        } else {
            let msg = self
                .body
                .get("error")
                .and_then(json::Value::as_str)
                .unwrap_or("request failed")
                .to_string();
            Err(format!("HTTP {}: {msg}", self.status))
        }
    }
}

/// A client bound to one daemon address (`host:port`).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    pub fn get(&self, path: &str) -> Result<ApiResponse, String> {
        let (status, body) = self.request("GET", path, None)?;
        let parsed = json::parse(&body).map_err(|e| format!("bad JSON body: {e}"))?;
        Ok(ApiResponse {
            status,
            body: parsed,
            raw: body,
        })
    }

    /// GET a non-JSON endpoint (`/metrics?format=prom`, `/dashboard`):
    /// status plus the raw body, no parsing.
    pub fn get_text(&self, path: &str) -> Result<(u16, String), String> {
        self.request("GET", path, None)
    }

    pub fn post(&self, path: &str, body: Option<&json::Value>) -> Result<ApiResponse, String> {
        let (status, body) = self.request("POST", path, body.map(json::Value::to_json))?;
        let parsed = json::parse(&body).map_err(|e| format!("bad JSON body: {e}"))?;
        Ok(ApiResponse {
            status,
            body: parsed,
            raw: body,
        })
    }

    /// One request/response exchange: (status, raw body).
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let body = body.unwrap_or_default();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        )
        .map_err(|e| format!("request write failed: {e}"))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| format!("response read failed: {e}"))?;
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .ok_or("malformed HTTP response")?;
        let status_line = head.lines().next().ok_or("empty HTTP response")?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        Ok((status, body.to_string()))
    }
}

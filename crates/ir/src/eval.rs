//! Functional semantics of ALU operations.
//!
//! These are shared by the simulator's per-thread execution engine, the CAE
//! baseline's affine units, and DAC's affine-tuple computation (which must
//! produce values bit-identical to the vector path — the decoupling is an
//! optimization, not an approximation).

use crate::instr::Op;
use crate::types::{f32_as_value, value_as_f32, Value};

/// Evaluate an ALU op on up to three source values.
///
/// Integer ops act on the full 64-bit register with wrapping semantics;
/// division/remainder by zero produce 0 (GPU-style, no traps). Float ops act
/// on the low 32 bits as `f32`.
#[inline]
pub fn eval(op: Op, a: Value, b: Value, c: Value) -> Value {
    let (ai, bi) = (a as i64, b as i64);
    let (af, bf, cf) = (value_as_f32(a), value_as_f32(b), value_as_f32(c));
    match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Mad => a.wrapping_mul(b).wrapping_add(c),
        Op::Div => {
            if bi == 0 {
                0
            } else {
                ai.wrapping_div(bi) as Value
            }
        }
        // Euclidean remainder (result in [0, |b|)): keeps `rem` consistent
        // with the affine mod-tuple algebra for negative operands. GPU
        // kernels use `rem` for address wrapping, where operands are
        // non-negative and Euclidean == truncated anyway.
        Op::Rem => {
            if bi == 0 || (ai == i64::MIN && bi == -1) {
                0
            } else {
                ai.rem_euclid(bi) as Value
            }
        }
        Op::Min => ai.min(bi) as Value,
        Op::Max => ai.max(bi) as Value,
        Op::Abs => ai.wrapping_abs() as Value,
        Op::Neg => (ai.wrapping_neg()) as Value,
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Not => !a,
        Op::Shl => a.wrapping_shl((b & 63) as u32),
        Op::Shr => a.wrapping_shr((b & 63) as u32),
        Op::Sar => (ai.wrapping_shr((b & 63) as u32)) as Value,
        Op::Mov => a,
        Op::FAdd => f32_as_value(af + bf),
        Op::FSub => f32_as_value(af - bf),
        Op::FMul => f32_as_value(af * bf),
        Op::FMad => f32_as_value(af * bf + cf),
        Op::FDiv => f32_as_value(af / bf),
        Op::FMin => f32_as_value(af.min(bf)),
        Op::FMax => f32_as_value(af.max(bf)),
        Op::FAbs => f32_as_value(af.abs()),
        Op::FNeg => f32_as_value(-af),
        Op::FSqrt => f32_as_value(af.sqrt()),
        Op::FRcp => f32_as_value(1.0 / af),
        Op::FExp2 => f32_as_value(af.exp2()),
        Op::FLog2 => f32_as_value(af.log2()),
        Op::FSin => f32_as_value(af.sin()),
        Op::FCos => f32_as_value(af.cos()),
        Op::I2F => f32_as_value(ai as f32),
        Op::F2I => (af as i64) as Value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_basics() {
        assert_eq!(eval(Op::Add, 3, 4, 0), 7);
        assert_eq!(eval(Op::Sub, 3, 4, 0), (-1i64) as u64);
        assert_eq!(eval(Op::Mad, 2, 3, 4,), 10);
        assert_eq!(eval(Op::Min, (-5i64) as u64, 2, 0), (-5i64) as u64);
        assert_eq!(eval(Op::Max, (-5i64) as u64, 2, 0), 2);
        assert_eq!(eval(Op::Abs, (-5i64) as u64, 0, 0), 5);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval(Op::Div, 10, 0, 0), 0);
        assert_eq!(eval(Op::Rem, 10, 0, 0), 0);
    }

    #[test]
    fn rem_is_euclidean() {
        assert_eq!(eval(Op::Rem, 7, 3, 0), 1);
        // Euclidean: result stays in [0, b).
        assert_eq!(eval(Op::Rem, (-7i64) as u64, 3, 0), 2);
        assert_eq!(eval(Op::Rem, (i64::MIN) as u64, (-1i64) as u64, 0), 0);
    }

    #[test]
    fn shifts() {
        assert_eq!(eval(Op::Shl, 1, 4, 0), 16);
        assert_eq!(eval(Op::Shr, 0x8000_0000_0000_0000, 63, 0), 1);
        assert_eq!(eval(Op::Sar, (-8i64) as u64, 1, 0) as i64, -4);
    }

    #[test]
    fn float_ops_low32() {
        let a = f32_as_value(1.5);
        let b = f32_as_value(2.0);
        assert_eq!(value_as_f32(eval(Op::FMul, a, b, 0)), 3.0);
        assert_eq!(value_as_f32(eval(Op::FMad, a, b, f32_as_value(0.5))), 3.5);
        assert_eq!(eval(Op::F2I, f32_as_value(-2.7), 0, 0) as i64, -2);
        assert_eq!(value_as_f32(eval(Op::I2F, 5, 0, 0)), 5.0);
    }
}

//! End-to-end test over a real socket: bind an ephemeral port, submit a
//! grid with the client, poll it to completion, fetch an artifact, and
//! re-submit asserting the store serves everything.

use simt_harness::json;
use simt_serve::client::Client;
use simt_serve::http::Server;
use simt_serve::{ServeConfig, SweepService};
use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn u(v: &json::Value, name: &str) -> u64 {
    v.get(name).and_then(json::Value::as_u64).unwrap()
}

#[test]
fn http_api_round_trip() {
    let results = std::env::temp_dir().join(format!("dac-serve-test-http-{}", std::process::id()));
    let _ = fs::remove_dir_all(&results);
    let service = Arc::new(SweepService::new(ServeConfig::new(&results, 2)));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());
    let client = Client::new(handle.addr().to_string());

    // Bad requests are 400s with the valid names, not daemon crashes.
    let bad = client
        .post(
            "/sweeps",
            Some(&json::parse(r#"{"benches": ["WARP9"]}"#).unwrap()),
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.raw.contains("LIB"),
        "error lists valid names: {}",
        bad.raw
    );
    assert_eq!(client.get("/sweeps/sweep-zzz").unwrap().status, 404);
    assert_eq!(client.get("/runs/not-hex").unwrap().status, 400);
    // from_str_radix alone would accept this 16-char key ('+' prefix) and
    // silently resolve the wrong hash.
    assert_eq!(client.get("/runs/+23456789abcdef0").unwrap().status, 400);
    assert_eq!(client.get("/runs/0123456789abcdef").unwrap().status, 404);

    // Submit a 2-point grid and poll it to completion.
    let request = json::parse(
        r#"{"benches": ["LIB"], "designs": ["baseline", "dac"],
            "overrides": {"num_sms": 2, "max_warps_per_sm": 16}}"#,
    )
    .unwrap();
    let receipt = client
        .post("/sweeps", Some(&request))
        .unwrap()
        .ok()
        .unwrap();
    let id = receipt
        .get("id")
        .and_then(json::Value::as_str)
        .unwrap()
        .to_string();
    assert_eq!(u(&receipt, "total"), 2);
    assert_eq!(u(&receipt, "new"), 2);
    let deadline = Instant::now() + Duration::from_secs(300);
    let status = loop {
        let status = client.get(&format!("/sweeps/{id}")).unwrap().ok().unwrap();
        if status.get("complete").and_then(json::Value::as_bool) == Some(true) {
            break status;
        }
        assert!(Instant::now() < deadline, "sweep timed out");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(u(&status, "done"), 2);
    assert_eq!(u(&status, "executed"), 2);
    assert_eq!(u(&status, "failed"), 0);

    // Fetch one run artifact: exactly the bytes the store holds.
    let points = status.get("points").and_then(json::Value::as_arr).unwrap();
    let run = points[0].get("run").and_then(json::Value::as_str).unwrap();
    let fetched = client.get(&format!("/runs/{run}")).unwrap();
    assert_eq!(fetched.status, 200);
    let on_disk = fs::read_to_string(results.join("cache").join(format!("{run}.json"))).unwrap();
    assert_eq!(fetched.raw, on_disk, "served artifact is byte-identical");
    assert_eq!(
        fetched.body.get("schema").and_then(json::Value::as_str),
        Some("dac-run/v1")
    );

    // Re-submitting the identical grid is answered from the store: the
    // receipt reports every point already done, and nothing re-executes.
    let again = client
        .post("/sweeps", Some(&request))
        .unwrap()
        .ok()
        .unwrap();
    assert_eq!(
        again.get("resubmitted").and_then(json::Value::as_bool),
        Some(true)
    );
    assert_eq!(u(&again, "already_done"), 2);
    let metrics = client.get("/metrics").unwrap().ok().unwrap();
    assert_eq!(u(&metrics, "executed"), 2, "no re-execution on resubmit");
    assert_eq!(u(&metrics, "queue_depth"), 0);
    assert_eq!(
        metrics.get("schema").and_then(json::Value::as_str),
        Some("dac-serve/v1")
    );
    // Latency accounting saw the endpoints this test exercised (a request
    // records itself after responding, so /metrics can't list this very
    // call — but all earlier traffic must be there).
    let endpoints = metrics.get("endpoints").unwrap();
    for label in ["POST /sweeps", "GET /sweeps/:id", "GET /runs/:key"] {
        assert!(
            endpoints.get(label).map(|e| u(e, "count") >= 1) == Some(true),
            "missing latency bucket for {label}"
        );
    }

    // Service overview.
    let overview = client.get("/status").unwrap().ok().unwrap();
    assert_eq!(
        overview.get("schema").and_then(json::Value::as_str),
        Some("dac-serve/v1")
    );
    assert_eq!(u(&overview, "workers"), 2);
    let sweeps = overview
        .get("sweeps")
        .and_then(json::Value::as_arr)
        .unwrap();
    assert_eq!(sweeps.len(), 1);
    assert_eq!(
        sweeps[0].get("complete").and_then(json::Value::as_bool),
        Some(true)
    );

    // Shutdown over the API stops the accept loop.
    let ack = client.post("/shutdown", None).unwrap().ok().unwrap();
    assert_eq!(
        ack.get("stopping").and_then(json::Value::as_bool),
        Some(true)
    );
    serving.join().unwrap();
    let _ = fs::remove_dir_all(&results);
}

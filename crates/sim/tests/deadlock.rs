//! The cycle-budget guard must fail with a *diagnosable* report, not a
//! bare "exceeded N cycles": the stalled cycle, per-kernel dispatch
//! state, every SM's progress counter and pending wake deadline, and
//! the fabric's per-partition/per-port progress breakdown. Pinned by
//! driving a run into the guard with an artificially tiny budget and
//! inspecting the panic message — serially and through the sharded
//! worker pool, which routes the same report.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simt_ir::{KernelBuilder, LaunchConfig, Program};
use simt_mem::SparseMemory;
use simt_sim::{GpuConfig, GpuSim};

/// Run a trivially-exiting kernel under a 1-cycle budget (no kernel can
/// finish dispatch + pipeline + retire that fast) and return the guard's
/// panic message.
fn guard_message(threads: usize) -> String {
    let mut k = KernelBuilder::new("tiny", 0);
    k.exit();
    // More warps than the machine has issue slots in one cycle, so the
    // run cannot complete inside the 1-cycle budget.
    let prog = Program::new(k.build(), LaunchConfig::linear(8, 256, vec![])).unwrap();
    let mut cfg = GpuConfig::test_small();
    cfg.max_cycles = 1;
    cfg.threads = threads;
    let gpu = GpuSim::new(cfg);
    let err = catch_unwind(AssertUnwindSafe(|| {
        gpu.run(&prog, &mut SparseMemory::new());
    }))
    .expect_err("a 1-cycle budget must trip the deadlock guard");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("guard panics with a message")
}

#[test]
fn deadlock_guard_reports_unit_progress_and_wakes() {
    let msg = guard_message(1);
    for needle in [
        "deadlock",
        "stalled at cycle 1",
        "kernel=tiny",
        "dispatch:",
        "sm0: progress=",
        "wake=",
        "fabric:",
        "partitions progress:",
        "sm-ports progress:",
    ] {
        assert!(msg.contains(needle), "report missing {needle:?}:\n{msg}");
    }
}

#[test]
fn deadlock_guard_reports_through_the_worker_pool() {
    let msg = guard_message(2);
    assert!(
        msg.contains("threads=2") && msg.contains("sm1: progress="),
        "threaded report incomplete:\n{msg}"
    );
}

//! Kernel streams: ordered launch queues consumed by the command
//! processor ([`crate::cmdproc::CommandProcessor`]).
//!
//! A [`Stream`] carries CUDA stream semantics: launches within one stream
//! run strictly in order (launch `i + 1` begins dispatching only after
//! every CTA of launch `i` has retired), while distinct streams are
//! independent and compete for SMs concurrently.

use simt_ir::Program;

/// One kernel launch queued on a stream.
#[derive(Debug, Clone)]
pub struct StreamLaunch {
    /// The validated program (kernel + launch geometry + parameters).
    pub program: Program,
    /// Attribution label carried into per-kernel reports and artifacts
    /// (a benchmark abbreviation or the kernel name).
    pub label: String,
}

impl StreamLaunch {
    /// A launch labelled with the kernel's own name.
    pub fn new(program: Program) -> Self {
        let label = program.kernel.name.clone();
        StreamLaunch { program, label }
    }

    /// A launch with an explicit attribution label.
    pub fn labelled(program: Program, label: impl Into<String>) -> Self {
        StreamLaunch {
            program,
            label: label.into(),
        }
    }
}

/// An in-order queue of kernel launches.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    /// Launches in issue order.
    pub launches: Vec<StreamLaunch>,
}

impl Stream {
    /// A stream of the given launches.
    pub fn of(launches: Vec<StreamLaunch>) -> Self {
        Stream { launches }
    }

    /// A stream holding a single launch.
    pub fn single(launch: StreamLaunch) -> Self {
        Stream {
            launches: vec![launch],
        }
    }
}

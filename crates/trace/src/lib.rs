//! # simt-trace — cycle-level event tracing for the DAC simulator stack
//!
//! A structured tracing subsystem threaded through `simt-sim`, `simt-mem`,
//! and the coprocessors. Design invariants:
//!
//! * **Zero-cost when disabled.** Every emit site in the simulators is
//!   written `if tracer.enabled() { tracer.emit(..) }`; with the
//!   [`NullTracer`] the branch is one virtual call returning a constant,
//!   and no event value is ever built. Entry points keep their original
//!   untraced signatures (`MemoryFabric::cycle`, `GpuSim::run_with`, …)
//!   delegating to `*_traced` twins with a `NullTracer`.
//! * **Pure observation.** A tracer receives copies of state and has no
//!   way to influence timing, so a `SimReport` is byte-identical with
//!   tracing on or off (asserted by the harness determinism test).
//! * **Bounded memory.** The standard sink is a [`RingSink`] that evicts
//!   the oldest events when full and counts what it dropped.
//!
//! Exporters: [`chrome::export`] writes Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto; [`jsonl::export`] writes the
//! `dac-trace/v1` line format (one JSON object per event, mirroring the
//! harness's `dac-run/v1` artifacts). [`series`] derives aggregate
//! time-series (IPC windows, queue occupancy, run-ahead histogram) from a
//! retained event stream.

pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod series;
pub mod sink;

pub use event::{StallCause, TimedEvent, TraceClient, TraceEvent, TraceReqKind};
pub use sink::{NullTracer, RingSink, Tracer};

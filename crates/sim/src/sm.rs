//! One streaming multiprocessor: schedulers, scoreboard, functional
//! execution, LSU, barriers, and CTA residency.

use crate::coalesce::{coalesce_into, Transaction};
use crate::config::GpuConfig;
use crate::coproc::{CoCtx, CoProcessor, IssueCost, RecordKind};
use crate::stats::SimStats;
use crate::warp::WarpState;
use simt_ir::cfg::DefTarget;
use simt_ir::{eval, AddrMode, AtomOp, Instr, Operand, PredSrc, Program, Space, Width};
use simt_mem::{
    AccessOutcome, Client, MemRequest, MemResponse, MemoryFabric, ReqKind, SmPortView, SparseMemory,
};
use simt_trace::{StallCause, TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Base of the per-thread local-memory window in the global address space.
pub const LOCAL_BASE: u64 = 1 << 40;
/// Bytes of local memory per thread.
pub const LOCAL_STRIDE: u64 = 1 << 16;

/// Immutable per-kernel context shared by all SMs during a run.
pub struct KernelCtx<'a> {
    /// The program being executed.
    pub program: &'a Program,
    /// Reconvergence PC for every branch (from CFG analysis).
    pub reconvergence: &'a HashMap<usize, usize>,
}

impl KernelCtx<'_> {
    fn rpc_of(&self, pc: usize) -> usize {
        self.reconvergence.get(&pc).copied().unwrap_or(usize::MAX)
    }
}

/// A CTA resident on an SM.
#[derive(Debug, Clone)]
pub struct CtaInfo {
    /// Linear CTA index in the grid.
    pub cta_linear: u64,
    /// Grid coordinates.
    pub coords: (u32, u32, u32),
    /// Warp slots owned by this CTA.
    pub warps: Vec<usize>,
    /// Per-CTA shared memory contents.
    pub shared: SparseMemory,
    /// Owning kernel (flattened stream-major launch index; 0 for
    /// single-kernel runs). Attribution tag for stats and trace events.
    pub kernel: usize,
    /// Register-file footprint (registers held while resident).
    pub regs: u32,
    /// Shared-memory footprint in bytes (held while resident).
    pub shared_bytes: u32,
}

#[derive(Debug, Clone, Copy)]
struct LoadTrack {
    warp: usize,
    dst: Option<u16>,
    unlock_line: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct LsuTxn {
    req: MemRequest,
}

/// What a deferred functional memory operation does at replay time.
#[derive(Debug, Clone, Copy)]
enum MemOpKind {
    /// Global/local load: read each lane, write the destination register.
    Load { warp: usize, dst: u16, width: usize },
    /// Global/local store: write each lane's captured value.
    Store { width: usize },
    /// Atomic RMW: lanes serialize in order against memory; the old value
    /// lands in the destination register.
    Atomic { warp: usize, dst: u16, op: AtomOp },
}

/// One functional access to the *shared* global memory image, logged at
/// issue and applied in the replay phase. Register operand values are
/// captured eagerly (they cannot change between issue and replay: a warp
/// issues at most once per cycle and the scoreboard holds load/atomic
/// destinations until their writeback), so replaying the log in SM-index
/// order reproduces the serial interleaving exactly — which is what lets
/// the SM-compute phase run threaded without touching `mem`.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    kind: MemOpKind,
    addrs: [Option<u64>; 32],
    vals: [u64; 32],
}

/// Outcome of a scheduler's readiness check on one warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Readiness {
    /// The warp can issue this cycle.
    Ready,
    /// Empty slot or retired warp — not schedulable, not a stall.
    Absent,
    /// The warp exists but is blocked, for this reason.
    Stalled(StallCause),
}

/// Stall causes observed while one scheduler hunted for a ready warp this
/// cycle. When the hunt comes up empty, the tally attributes the slot to
/// exactly one top-down accounting bucket.
#[derive(Debug, Default, Clone, Copy)]
struct StallTally {
    scoreboard: u64,
    lsu_full: u64,
    barrier: u64,
    deq_empty: u64,
    deq_data: u64,
}

impl StallTally {
    /// Charge one empty issue slot to a bucket: majority stall cause over
    /// the warps considered, ties broken by a fixed order (back-pressure
    /// causes first) so attribution is deterministic. Slots where no warp
    /// was even considered are `enq_full` when the affine engine was
    /// blocked on a full ATQ this cycle, else `idle`.
    fn attribute(&self, enq_pressure: bool, stats: &mut SimStats) {
        let ranked = [
            self.deq_data,
            self.deq_empty,
            self.lsu_full,
            self.scoreboard,
            self.barrier,
        ];
        if ranked.iter().sum::<u64>() == 0 {
            if enq_pressure {
                stats.slot_enq_full += 1;
            } else {
                stats.slot_idle += 1;
            }
            return;
        }
        let mut best = 0;
        for (i, &n) in ranked.iter().enumerate().skip(1) {
            if n > ranked[best] {
                best = i;
            }
        }
        match best {
            0 => stats.slot_deq_data += 1,
            1 => stats.slot_deq_empty += 1,
            2 => stats.slot_lsu_full += 1,
            3 => stats.slot_scoreboard += 1,
            _ => stats.slot_barrier += 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Scheduler {
    busy_until: u64,
    /// Two-level scheduling: the active pool (warp ids); only these warps
    /// are considered first, pending warps swap in when the pool stalls.
    active: VecDeque<usize>,
}

/// One streaming multiprocessor.
pub struct Sm {
    /// SM index.
    pub id: usize,
    /// Warp slots.
    pub warps: Vec<Option<WarpState>>,
    /// CTA slots.
    pub cta_slots: Vec<Option<CtaInfo>>,
    schedulers: Vec<Scheduler>,
    /// Pending register/predicate releases: `(at, warp, id, target)` with a
    /// monotone `id` so ordering never reaches the 4th field. The def
    /// target is encoded inline (`Reg(r)` → `r`, `Pred(p)` → `1<<32 | p`)
    /// instead of living in a side map keyed by id.
    writeback: BinaryHeap<Reverse<(u64, usize, u64, u64)>>,
    next_wb: u64,
    lsu: VecDeque<LsuTxn>,
    /// In-flight loads/atomics by token. A short linear-scan Vec, not a
    /// map: a handful of entries at most, and removal order never matters.
    outstanding: Vec<(u64, LoadTrack)>,
    next_token: u64,
    /// Reusable scratch buffers for the per-cycle hot path (see DESIGN.md
    /// "Simulator performance"); cleared before each use, never observed
    /// across calls.
    resp_scratch: Vec<MemResponse>,
    txn_scratch: Vec<Transaction>,
    line_scratch: Vec<u64>,
    /// Functional global-memory operations deferred from this cycle's
    /// issue phase to the replay phase (see [`MemOp`]). Cleared at the
    /// start of every compute phase; capacity is reused.
    mem_ops: Vec<MemOp>,
    /// Registers currently held by resident CTAs (incremental occupancy
    /// accounting; launch adds, retire subtracts).
    used_regs: u32,
    /// Shared-memory bytes currently held by resident CTAs.
    used_shared: u32,
    /// Monotone event counter for the idle-cycle fast-forward probe. Bumped
    /// only on SM-side state changes that no statistics counter already
    /// witnesses: writeback-heap pops, barrier releases, and CTA retires.
    /// (Issues show up as `slot_issued` / `affine_issue_slots`; memory
    /// traffic as fabric progress.) Deliberately NOT a `SimStats` field —
    /// it must never reach artifacts.
    progress: u64,
}

impl Sm {
    /// Create an SM per `cfg`.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        Sm {
            id,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            cta_slots: (0..cfg.max_ctas_per_sm).map(|_| None).collect(),
            schedulers: (0..cfg.schedulers)
                .map(|_| Scheduler {
                    busy_until: 0,
                    active: VecDeque::new(),
                })
                .collect(),
            writeback: BinaryHeap::new(),
            next_wb: 0,
            lsu: VecDeque::new(),
            outstanding: Vec::new(),
            next_token: 0,
            resp_scratch: Vec::new(),
            txn_scratch: Vec::new(),
            line_scratch: Vec::new(),
            mem_ops: Vec::new(),
            used_regs: 0,
            used_shared: 0,
            progress: 0,
        }
    }

    /// Fast-forward probe: total SM-side progress events so far (see the
    /// `progress` field for what counts).
    pub(crate) fn progress_count(&self) -> u64 {
        self.progress
    }

    /// Earliest cycle after `now` at which this SM could act without any
    /// external event: the next writeback release, or a scheduler coming
    /// back from a multi-cycle issue. `u64::MAX` when neither is pending.
    /// Called after the cycle's `drain_writebacks`, so any heap head is
    /// strictly in the future.
    pub(crate) fn next_event_time(&self, now: u64) -> u64 {
        let mut wake = u64::MAX;
        if let Some(&Reverse((at, _, _, _))) = self.writeback.peek() {
            wake = wake.min(at.max(now + 1));
        }
        for s in &self.schedulers {
            if s.busy_until > now {
                wake = wake.min(s.busy_until);
            }
        }
        wake
    }

    /// Register-file footprint of one CTA of this kernel: every warp slot
    /// holds 32 threads' worth of `regs_per_thread` registers.
    pub fn cta_regs(kctx: &KernelCtx<'_>) -> u32 {
        kctx.program.launch.warps_per_cta() * 32 * kctx.program.kernel.regs_per_thread as u32
    }

    /// Does the SM have room for another CTA of this kernel? Checks all
    /// four static resources: CTA slots, warp slots, shared memory, and
    /// the register file.
    pub fn can_accept_cta(&self, cfg: &GpuConfig, kctx: &KernelCtx<'_>) -> bool {
        let warps_needed = kctx.program.launch.warps_per_cta() as usize;
        let free_slot = self.cta_slots.iter().any(|s| s.is_none());
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count();
        let shared_ok =
            self.used_shared + kctx.program.kernel.shared_bytes <= cfg.shared_mem_per_sm;
        let regs_ok = self.used_regs + Self::cta_regs(kctx) <= cfg.regfile_per_sm;
        free_slot && free_warps >= warps_needed && shared_ok && regs_ok
    }

    /// Registers currently held by resident CTAs.
    pub fn used_regs(&self) -> u32 {
        self.used_regs
    }

    /// Shared-memory bytes currently held by resident CTAs.
    pub fn used_shared(&self) -> u32 {
        self.used_shared
    }

    /// Launch CTA `cta_linear` of kernel `kernel_id` onto this SM. Returns
    /// the slot used.
    ///
    /// # Panics
    ///
    /// Panics if [`Sm::can_accept_cta`] is false.
    pub fn launch_cta(
        &mut self,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        kernel_id: usize,
        cta_linear: u64,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
    ) -> usize {
        let launch = &kctx.program.launch;
        let kernel = &kctx.program.kernel;
        let slot = self
            .cta_slots
            .iter()
            .position(|s| s.is_none())
            .expect("no free CTA slot");
        let warps_needed = launch.warps_per_cta() as usize;
        let threads = launch.threads_per_cta() as u64;
        let mut warp_ids = Vec::with_capacity(warps_needed);
        for w in 0..warps_needed {
            let id = self
                .warps
                .iter()
                .position(|x| x.is_none())
                .expect("no free warp slot");
            let first = w as u64 * 32;
            let live = threads.saturating_sub(first).min(32) as u32;
            let mask = if live == 32 {
                u32::MAX
            } else {
                (1u32 << live) - 1
            };
            self.warps[id] = Some(WarpState::new(
                id,
                slot,
                cta_linear,
                w,
                kernel.num_regs,
                kernel.num_preds,
                mask,
            ));
            warp_ids.push(id);
        }
        let cta_regs = Self::cta_regs(kctx);
        self.used_regs += cta_regs;
        self.used_shared += kernel.shared_bytes;
        assert!(
            self.used_regs <= cfg.regfile_per_sm && self.used_shared <= cfg.shared_mem_per_sm,
            "CTA launch oversubscribed SM {}: regs {}/{}, shared {}/{}",
            self.id,
            self.used_regs,
            cfg.regfile_per_sm,
            self.used_shared,
            cfg.shared_mem_per_sm
        );
        self.cta_slots[slot] = Some(CtaInfo {
            cta_linear,
            coords: launch.grid.unflatten(cta_linear),
            warps: warp_ids,
            shared: SparseMemory::new(),
            kernel: kernel_id,
            regs: cta_regs,
            shared_bytes: kernel.shared_bytes,
        });
        stats.ctas_launched += 1;
        stats.threads_launched += threads;
        let cta = self.cta_slots[slot].as_ref().unwrap();
        coproc.on_cta_launch(self.id, slot, cta_linear, &cta.warps);
        slot
    }

    /// All warps retired and nothing in flight?
    pub fn idle(&self) -> bool {
        self.cta_slots.iter().all(|s| s.is_none())
            && self.lsu.is_empty()
            && self.outstanding.is_empty()
    }

    /// Number of resident CTAs.
    pub fn resident_ctas(&self) -> usize {
        self.cta_slots.iter().flatten().count()
    }

    fn schedule_writeback(&mut self, at: u64, warp: usize, what: DefTarget) {
        let id = self.next_wb;
        self.next_wb += 1;
        let enc = match what {
            DefTarget::Reg(r) => r as u64,
            DefTarget::Pred(p) => (1u64 << 32) | p as u64,
        };
        self.writeback.push(Reverse((at, warp, id, enc)));
    }

    /// Advance the SM one cycle (serial convenience: compute + replay
    /// against the full fabric). The run loop drives
    /// [`Sm::cycle_compute`] and [`Sm::cycle_replay`] separately so the
    /// compute phase can run on worker threads.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        mem: &mut SparseMemory,
        fabric: &mut MemoryFabric,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
    ) {
        let pbuf_stats = coproc.wants_pbuf_stats(now).then(|| fabric.pbuf_stats());
        {
            let mut port = fabric.port_view(self.id);
            self.cycle_compute(now, cfg, kctx, &mut port, coproc, stats, pbuf_stats, tracer);
        }
        self.cycle_replay(now, mem, fabric, coproc, stats, tracer);
    }

    /// The SM-local part of a cycle: writeback/response drains, the
    /// coprocessor step, scheduler picks, functional execution of
    /// register/shared-memory work, and barrier resolution. Touches only
    /// this SM, its fabric port, and its coprocessor state — never the
    /// shared global-memory image or the partitions — so distinct SMs'
    /// compute phases are independent and can run on different worker
    /// threads. Fabric requests and global-memory operations are logged
    /// for [`Sm::cycle_replay`].
    #[allow(clippy::too_many_arguments)]
    pub fn cycle_compute(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        port: &mut SmPortView<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        pbuf_stats: Option<(u64, u64)>,
        tracer: &mut dyn Tracer,
    ) {
        self.mem_ops.clear();
        self.drain_writebacks(now);
        self.drain_responses(now, port, coproc, tracer);

        // Coprocessor gets first crack at issue slot 0 (the affine warp
        // shares the SM's issue bandwidth, paper §4.4).
        let mut slot0_free = self.schedulers[0].busy_until <= now;
        let slot0_was_free = slot0_free;
        let enq_before = stats.enq_full_stalls;
        {
            let mut ctx = CoCtx {
                now,
                sm: self.id,
                line_bytes: cfg.mem.line_bytes,
                pbuf_stats,
                issue_slot: &mut slot0_free,
                stats,
                tracer,
            };
            coproc.step(&mut ctx);
        }
        let enq_pressure = stats.enq_full_stalls > enq_before;
        let affine_consumed = slot0_was_free && !slot0_free;
        if affine_consumed {
            // Affine warp consumed scheduler 0 for one instruction.
            self.schedulers[0].busy_until = now + 1;
            stats.affine_issue_slots += 1;
        }

        for s in 0..self.schedulers.len() {
            if self.schedulers[s].busy_until > now {
                // An affine-consumed slot 0 is already bucketed as
                // `affine_issue_slots`; any other busy scheduler is still
                // occupied by a prior multi-cycle issue.
                if s != 0 || !affine_consumed {
                    stats.slot_busy += 1;
                }
                continue;
            }
            let mut tally = StallTally::default();
            if let Some(w) = self.pick_warp(s, now, cfg, kctx, coproc, stats, tracer, &mut tally) {
                stats.slot_issued += 1;
                let cost = self.issue(w, now, cfg, kctx, coproc, stats, tracer);
                let busy = match cost {
                    IssueCost::Normal => cfg.issue_interval,
                    IssueCost::Fast => 1,
                };
                self.schedulers[s].busy_until = now + busy;
            } else {
                stats.idle_scheduler_cycles += 1;
                tally.attribute(s == 0 && enq_pressure, stats);
            }
        }

        self.resolve_barriers(coproc, stats);
    }

    /// The shared-state part of a cycle, run for every SM in index order
    /// by a single thread: coprocessor fabric traffic
    /// ([`CoProcessor::pump`]), the deferred global-memory log, and the
    /// LSU's one-transaction-per-cycle fabric access. Submission order
    /// across SMs is the serial order, so partition-queue admission (and
    /// every stall it causes) is byte-identical to a serial run.
    pub fn cycle_replay(
        &mut self,
        now: u64,
        mem: &mut SparseMemory,
        fabric: &mut MemoryFabric,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
    ) {
        coproc.pump(self.id, now, fabric, stats, tracer);
        self.apply_mem_ops(mem);
        self.pump_lsu(now, fabric, tracer);
    }

    /// Apply the cycle's deferred functional memory operations in issue
    /// order (see [`MemOp`] for why this is exact).
    fn apply_mem_ops(&mut self, mem: &mut SparseMemory) {
        if self.mem_ops.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.mem_ops);
        for mop in &ops {
            match mop.kind {
                MemOpKind::Load { warp, dst, width } => {
                    let w = self.warps[warp].as_mut().unwrap();
                    for (lane, a) in mop.addrs.iter().enumerate() {
                        if let Some(a) = a {
                            let v = mem.read_bytes(*a, width);
                            w.set_reg(dst, lane, v);
                        }
                    }
                }
                MemOpKind::Store { width } => {
                    for (lane, a) in mop.addrs.iter().enumerate() {
                        if let Some(a) = a {
                            mem.write_bytes(*a, mop.vals[lane], width);
                        }
                    }
                }
                MemOpKind::Atomic { warp, dst, op } => {
                    let w = self.warps[warp].as_mut().unwrap();
                    for (lane, a) in mop.addrs.iter().enumerate() {
                        let Some(a) = *a else { continue };
                        let old = mem.read_u32(a) as u64;
                        let v = mop.vals[lane];
                        let new = match op {
                            AtomOp::Add => (old as u32).wrapping_add(v as u32) as u64,
                            AtomOp::Min => (old as i64).min(v as i64) as u64,
                            AtomOp::Max => (old as i64).max(v as i64) as u64,
                            AtomOp::Exch => v,
                        };
                        mem.write_u32(a, new as u32);
                        w.set_reg(dst, lane, old);
                    }
                }
            }
        }
        self.mem_ops = ops;
        self.mem_ops.clear();
    }

    fn drain_writebacks(&mut self, now: u64) {
        while let Some(&Reverse((at, warp, _, enc))) = self.writeback.peek() {
            if at > now {
                break;
            }
            self.writeback.pop();
            self.progress += 1;
            if let Some(w) = self.warps[warp].as_mut() {
                if enc & (1u64 << 32) != 0 {
                    w.release_pred(enc as u16);
                } else {
                    w.release_reg(enc as u16);
                }
            }
        }
    }

    fn drain_responses(
        &mut self,
        now: u64,
        port: &mut SmPortView<'_>,
        coproc: &mut dyn CoProcessor,
        tracer: &mut dyn Tracer,
    ) {
        let mut resps = std::mem::take(&mut self.resp_scratch);
        resps.clear();
        port.drain_responses_into(self.id, now, tracer, &mut resps);
        for resp in &resps {
            match resp.client {
                Client::Lsu => {
                    if let Some(pos) = self.outstanding.iter().position(|&(t, _)| t == resp.token) {
                        let (_, track) = self.outstanding.swap_remove(pos);
                        if let Some(line) = track.unlock_line {
                            port.unlock(line);
                        }
                        if let Some(r) = track.dst {
                            if let Some(w) = self.warps[track.warp].as_mut() {
                                w.release_reg(r);
                            }
                        }
                    }
                }
                Client::Dac | Client::Mta => coproc.on_response(resp),
            }
        }
        self.resp_scratch = resps;
    }

    /// Two-level warp pick for scheduler `s`: round-robin over the active
    /// pool's ready warps; on a dry pool, swap a ready pending warp in.
    #[allow(clippy::too_many_arguments)]
    fn pick_warp(
        &mut self,
        s: usize,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
        tally: &mut StallTally,
    ) -> Option<usize> {
        let nsched = self.schedulers.len();
        // Evict finished warps from the pool.
        self.schedulers[s]
            .active
            .retain(|&w| matches!(&self.warps[w], Some(ws) if !ws.done()));
        // 1. Ready warp already in the active pool (rotating order). The
        // pool is only mutated on a successful pick, so indexed iteration
        // sees exactly the snapshot a copy would.
        let pool_len = self.schedulers[s].active.len();
        for pos in 0..pool_len {
            let w = self.schedulers[s].active[pos];
            if self.warp_check(w, now, cfg, kctx, coproc, stats, tracer, tally) == Readiness::Ready
            {
                // Rotate the pool so the warp after `w` gets priority next.
                self.schedulers[s]
                    .active
                    .rotate_left((pos + 1) % pool_len.max(1));
                return Some(w);
            }
        }
        // 2. Swap in a ready pending warp.
        for w in 0..self.warps.len() {
            if w % nsched != s
                || self.schedulers[s].active.contains(&w)
                || !matches!(&self.warps[w], Some(ws) if !ws.done())
            {
                continue;
            }
            if self.warp_check(w, now, cfg, kctx, coproc, stats, tracer, tally) == Readiness::Ready
            {
                if self.schedulers[s].active.len() >= cfg.active_pool {
                    self.schedulers[s].active.pop_front();
                }
                self.schedulers[s].active.push_back(w);
                return Some(w);
            }
        }
        None
    }

    /// Classify a warp's readiness, count the stall reason (counters are
    /// updated identically whether tracing is on or off), and emit a
    /// [`TraceEvent::WarpStall`] when a tracer is attached.
    #[allow(clippy::too_many_arguments)]
    fn warp_check(
        &self,
        w: usize,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
        tally: &mut StallTally,
    ) -> Readiness {
        let deq_data_before = stats.deq_data_stalls;
        let r = self.warp_ready(w, now, cfg, kctx, coproc, stats);
        if let Readiness::Stalled(cause) = r {
            match cause {
                StallCause::Scoreboard => {
                    stats.stall_scoreboard += 1;
                    tally.scoreboard += 1;
                }
                StallCause::LsuFull => {
                    stats.stall_lsu_full += 1;
                    tally.lsu_full += 1;
                }
                StallCause::Barrier => {
                    stats.stall_barrier += 1;
                    tally.barrier += 1;
                }
                // Coprocessor gates keep their own counters
                // (deq_empty_stalls / deq_data_stalls); split the tally
                // the same way by watching which counter moved.
                StallCause::CoprocGate => {
                    if stats.deq_data_stalls > deq_data_before {
                        tally.deq_data += 1;
                    } else {
                        tally.deq_empty += 1;
                    }
                }
                _ => {}
            }
            if tracer.enabled() {
                let pc = self.warps[w].as_ref().map_or(0, |ws| ws.stack.pc());
                tracer.emit(
                    now,
                    TraceEvent::WarpStall {
                        sm: self.id as u32,
                        warp: w as u32,
                        pc: pc as u32,
                        cause,
                    },
                );
            }
        }
        r
    }

    fn warp_ready(
        &self,
        w: usize,
        _now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
    ) -> Readiness {
        let Some(warp) = self.warps[w].as_ref() else {
            return Readiness::Absent;
        };
        if warp.done() {
            return Readiness::Absent;
        }
        if warp.at_barrier {
            return Readiness::Stalled(StallCause::Barrier);
        }
        let pc = warp.stack.pc();
        let instr = &kctx.program.kernel.instrs[pc];
        // Scoreboard: sources and destination must be idle. The inline
        // (array) variants keep this allocation-free — it runs for every
        // candidate warp every cycle.
        let (src_regs, nr) = instr.src_regs_inline();
        for &r in &src_regs[..nr] {
            if warp.reg_pending(r) {
                return Readiness::Stalled(StallCause::Scoreboard);
            }
        }
        let (src_preds, np) = instr.src_preds_inline();
        for &p in &src_preds[..np] {
            if warp.pred_pending(p) {
                return Readiness::Stalled(StallCause::Scoreboard);
            }
        }
        if let Some(r) = instr.def_reg() {
            if warp.reg_pending(r) {
                return Readiness::Stalled(StallCause::Scoreboard);
            }
        }
        if let Some(p) = instr.def_pred() {
            if warp.pred_pending(p) {
                return Readiness::Stalled(StallCause::Scoreboard);
            }
        }
        // Structural: LSU queue space for memory instructions.
        if instr.is_mem() && self.lsu.len() >= cfg.lsu_queue {
            return Readiness::Stalled(StallCause::LsuFull);
        }
        // Coprocessor gate (dequeue readiness).
        if coproc.can_issue(self.id, w, instr, stats) {
            Readiness::Ready
        } else {
            Readiness::Stalled(StallCause::CoprocGate)
        }
    }

    /// Issue and functionally execute one instruction of warp `w`.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        w: usize,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
    ) -> IssueCost {
        let launch = &kctx.program.launch;
        let pc = self.warps[w].as_ref().unwrap().stack.pc();
        // Borrow the instruction from the shared program — kctx outlives
        // the `&mut self` uses below, so no per-issue clone is needed.
        let instr = &kctx.program.kernel.instrs[pc];
        let cta_coords;
        {
            let warp = self.warps[w].as_ref().unwrap();
            cta_coords = self.cta_slots[warp.cta_slot]
                .as_ref()
                .map(|c| c.coords)
                .unwrap_or((0, 0, 0));
        }
        stats.warp_instructions += 1;
        let active = self.warps[w].as_ref().unwrap().stack.active_mask();
        let cost = coproc.issue_cost(self.id, w, instr, active, stats);
        self.warps[w].as_mut().unwrap().last_issue = now;
        let depth_before = self.warps[w].as_ref().unwrap().stack.depth();
        if tracer.enabled() {
            tracer.emit(
                now,
                TraceEvent::WarpIssue {
                    sm: self.id as u32,
                    warp: w as u32,
                    pc: pc as u32,
                    active: active.count_ones(),
                },
            );
        }

        let eff_mask = {
            let warp = self.warps[w].as_ref().unwrap();
            match instr.guard() {
                Some(g) => {
                    let bits = warp.pred(g.pred);
                    active & if g.negate { !bits } else { bits }
                }
                None => active,
            }
        };
        let lanes = eff_mask.count_ones() as u64;

        match instr {
            Instr::Alu { op, dst, srcs, .. } => {
                let warp = self.warps[w].as_mut().unwrap();
                for lane in 0..32 {
                    if eff_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = warp.operand(srcs[0], lane, launch, cta_coords);
                    let b = warp.operand(srcs[1], lane, launch, cta_coords);
                    let c = warp.operand(srcs[2], lane, launch, cta_coords);
                    warp.set_reg(*dst, lane, eval::eval(*op, a, b, c));
                }
                warp.mark_reg_pending(*dst);
                let lat = if op.is_sfu() {
                    cfg.sfu_latency
                } else {
                    cfg.alu_latency
                };
                self.schedule_writeback(now + lat, w, DefTarget::Reg(*dst));
                if op.is_sfu() {
                    stats.sfu_lane_ops += lanes;
                } else {
                    stats.alu_lane_ops += lanes;
                }
                stats.regfile_accesses += lanes * (op.arity() as u64 + 1);
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::SetP {
                dst,
                cmp,
                a,
                b,
                float,
                ..
            } => {
                let warp = self.warps[w].as_mut().unwrap();
                let mut bits = 0u32;
                for lane in 0..32 {
                    if eff_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let av = warp.operand(*a, lane, launch, cta_coords);
                    let bv = warp.operand(*b, lane, launch, cta_coords);
                    let r = if *float {
                        cmp.eval_f32(f32::from_bits(av as u32), f32::from_bits(bv as u32))
                    } else {
                        cmp.eval_i64(av as i64, bv as i64)
                    };
                    if r {
                        bits |= 1 << lane;
                    }
                }
                warp.set_pred_masked(*dst, bits, eff_mask);
                warp.mark_pred_pending(*dst);
                self.schedule_writeback(now + cfg.alu_latency, w, DefTarget::Pred(*dst));
                stats.alu_lane_ops += lanes;
                stats.regfile_accesses += lanes * 2;
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::Sel { dst, pred, a, b } => {
                let warp = self.warps[w].as_mut().unwrap();
                let pbits = warp.pred(pred.pred);
                for lane in 0..32 {
                    if eff_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let cond = pbits & (1 << lane) != 0;
                    let cond = if pred.negate { !cond } else { cond };
                    let v = if cond {
                        warp.operand(*a, lane, launch, cta_coords)
                    } else {
                        warp.operand(*b, lane, launch, cta_coords)
                    };
                    warp.set_reg(*dst, lane, v);
                }
                warp.mark_reg_pending(*dst);
                self.schedule_writeback(now + cfg.alu_latency, w, DefTarget::Reg(*dst));
                stats.alu_lane_ops += lanes;
                stats.regfile_accesses += lanes * 3;
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::Ld {
                dst,
                space,
                addr,
                width,
                ..
            } => {
                self.exec_load(
                    w, pc, *dst, *space, *addr, *width, eff_mask, now, cfg, kctx, coproc, stats,
                    cta_coords, tracer,
                );
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::St {
                space,
                addr,
                src,
                width,
                ..
            } => {
                self.exec_store(
                    w, pc, *space, *addr, *src, *width, eff_mask, now, cfg, kctx, coproc, stats,
                    cta_coords, tracer,
                );
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::Atom {
                op, dst, addr, src, ..
            } => {
                self.exec_atomic(
                    w, *op, *dst, *addr, *src, eff_mask, now, cfg, kctx, stats, cta_coords,
                );
                self.warps[w].as_mut().unwrap().stack.advance();
            }
            Instr::Bra { target, pred } => {
                stats.branches += 1;
                let rpc = kctx.rpc_of(pc);
                let taken = match pred {
                    None => active,
                    Some(PredSrc::Reg(g)) => {
                        let bits = self.warps[w].as_ref().unwrap().pred(g.pred);
                        if g.negate {
                            !bits
                        } else {
                            bits
                        }
                    }
                    Some(PredSrc::Deq { negate }) => {
                        let bits = coproc
                            .deq_pred_bits(self.id, w)
                            .expect("deq.pred issued with empty PWPQ");
                        if *negate {
                            !bits
                        } else {
                            bits
                        }
                    }
                };
                self.warps[w]
                    .as_mut()
                    .unwrap()
                    .stack
                    .branch(taken, *target, rpc);
            }
            Instr::Bar => {
                stats.barriers += 1;
                let warp = self.warps[w].as_mut().unwrap();
                warp.at_barrier = true;
                warp.stack.advance();
            }
            Instr::Exit => {
                self.warps[w].as_mut().unwrap().stack.exit();
            }
            Instr::Enq { .. } => {
                unreachable!("enq must only appear in the affine stream");
            }
        }
        if tracer.enabled() {
            let depth_after = self.warps[w].as_ref().unwrap().stack.depth();
            if depth_after != depth_before {
                tracer.emit(
                    now,
                    TraceEvent::StackDepth {
                        sm: self.id as u32,
                        warp: w as u32,
                        pc: pc as u32,
                        depth: depth_after as u32,
                        push: depth_after > depth_before,
                    },
                );
            }
        }
        cost
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        w: usize,
        pc: usize,
        dst: u16,
        space: Space,
        addr: AddrMode,
        width: Width,
        eff_mask: u32,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        cta_coords: (u32, u32, u32),
        tracer: &mut dyn Tracer,
    ) -> Option<()> {
        let launch = &kctx.program.launch;
        let (addrs, record) = self.resolve_addrs(w, addr, eff_mask, launch, cta_coords, coproc);
        stats.regfile_accesses += addrs.iter().flatten().count() as u64 * 2;
        match space {
            Space::Shared => {
                stats.shared_accesses += 1;
                let slot = self.warps[w].as_ref().unwrap().cta_slot;
                let shared = &mut self.cta_slots[slot].as_mut().unwrap().shared;
                let mut vals = [0u64; 32];
                for (lane, a) in addrs.iter().enumerate() {
                    if let Some(a) = a {
                        vals[lane] = shared.read_bytes(*a, width.bytes() as usize);
                    }
                }
                let warp = self.warps[w].as_mut().unwrap();
                for (lane, a) in addrs.iter().enumerate() {
                    if a.is_some() {
                        warp.set_reg(dst, lane, vals[lane]);
                    }
                }
                warp.mark_reg_pending(dst);
                self.schedule_writeback(now + cfg.shared_latency, w, DefTarget::Reg(dst));
            }
            Space::Global | Space::Local => {
                stats.global_loads += 1;
                // Dequeued records already carry absolute addresses (the
                // AEU applied the local window when it issued the early
                // requests).
                let mut addrs = addrs;
                if record.is_none() {
                    self.translate_local(w, space, &mut addrs, kctx);
                }
                // Functional read deferred to the replay phase (the global
                // image is shared across SMs). The scoreboard marks `dst`
                // pending below, so nothing reads it before replay.
                {
                    let mut mop = MemOp {
                        kind: MemOpKind::Load {
                            warp: w,
                            dst,
                            width: width.bytes() as usize,
                        },
                        addrs: [None; 32],
                        vals: [0; 32],
                    };
                    for (lane, a) in addrs.iter().enumerate().take(32) {
                        mop.addrs[lane] = *a;
                    }
                    self.mem_ops.push(mop);
                }
                let mut txns = std::mem::take(&mut self.txn_scratch);
                coalesce_into(&addrs, cfg.mem.line_bytes, &mut txns);
                self.line_scratch.clear();
                self.line_scratch.extend(txns.iter().map(|t| t.line));
                coproc.observe_mem(self.id, w, pc, space, false, &self.line_scratch);
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::Coalesce {
                            sm: self.id as u32,
                            warp: w as u32,
                            pc: pc as u32,
                            lanes: addrs.iter().flatten().count() as u32,
                            txns: txns.len() as u32,
                            store: false,
                        },
                    );
                }
                let decoupled = record.is_some();
                if decoupled {
                    stats.decoupled_loads += 1;
                }
                let unlock = matches!(record, Some(RecordKind::Data));
                // An empty txn list (fully guarded off) leaves nothing
                // outstanding.
                for t in &txns {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.outstanding.push((
                        token,
                        LoadTrack {
                            warp: w,
                            dst: Some(dst),
                            unlock_line: unlock.then_some(t.line),
                        },
                    ));
                    self.warps[w].as_mut().unwrap().mark_reg_pending(dst);
                    self.lsu.push_back(LsuTxn {
                        req: MemRequest {
                            sm: self.id,
                            line: t.line,
                            kind: ReqKind::Load,
                            client: Client::Lsu,
                            token,
                        },
                    });
                }
                self.txn_scratch = txns;
            }
        }
        Some(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        w: usize,
        pc: usize,
        space: Space,
        addr: AddrMode,
        src: Operand,
        width: Width,
        eff_mask: u32,
        now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        coproc: &mut dyn CoProcessor,
        stats: &mut SimStats,
        cta_coords: (u32, u32, u32),
        tracer: &mut dyn Tracer,
    ) {
        let launch = &kctx.program.launch;
        let (addrs, _record) = self.resolve_addrs(w, addr, eff_mask, launch, cta_coords, coproc);
        stats.regfile_accesses += addrs.iter().flatten().count() as u64 * 2;
        match space {
            Space::Shared => {
                stats.shared_accesses += 1;
                let slot = self.warps[w].as_ref().unwrap().cta_slot;
                let mut vals = [0u64; 32];
                {
                    let warp = self.warps[w].as_ref().unwrap();
                    for (lane, a) in addrs.iter().enumerate() {
                        if a.is_some() {
                            vals[lane] = warp.operand(src, lane, launch, cta_coords);
                        }
                    }
                }
                let shared = &mut self.cta_slots[slot].as_mut().unwrap().shared;
                for (lane, a) in addrs.iter().enumerate() {
                    if let Some(a) = a {
                        shared.write_bytes(*a, vals[lane], width.bytes() as usize);
                    }
                }
            }
            Space::Global | Space::Local => {
                stats.global_stores += 1;
                let mut addrs = addrs;
                if _record.is_none() {
                    self.translate_local(w, space, &mut addrs, kctx);
                }
                {
                    // Functional write deferred to the replay phase; lane
                    // values are captured now (operands cannot change before
                    // replay — the warp is done for this cycle).
                    let warp = self.warps[w].as_ref().unwrap();
                    let mut mop = MemOp {
                        kind: MemOpKind::Store {
                            width: width.bytes() as usize,
                        },
                        addrs: [None; 32],
                        vals: [0; 32],
                    };
                    for (lane, a) in addrs.iter().enumerate().take(32) {
                        if a.is_some() {
                            mop.addrs[lane] = *a;
                            mop.vals[lane] = warp.operand(src, lane, launch, cta_coords);
                        }
                    }
                    self.mem_ops.push(mop);
                }
                let mut txns = std::mem::take(&mut self.txn_scratch);
                coalesce_into(&addrs, cfg.mem.line_bytes, &mut txns);
                self.line_scratch.clear();
                self.line_scratch.extend(txns.iter().map(|t| t.line));
                coproc.observe_mem(self.id, w, pc, space, true, &self.line_scratch);
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::Coalesce {
                            sm: self.id as u32,
                            warp: w as u32,
                            pc: pc as u32,
                            lanes: addrs.iter().flatten().count() as u32,
                            txns: txns.len() as u32,
                            store: true,
                        },
                    );
                }
                for t in &txns {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.lsu.push_back(LsuTxn {
                        req: MemRequest {
                            sm: self.id,
                            line: t.line,
                            kind: ReqKind::Store,
                            client: Client::Lsu,
                            token,
                        },
                    });
                }
                self.txn_scratch = txns;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic(
        &mut self,
        w: usize,
        op: AtomOp,
        dst: u16,
        addr: AddrMode,
        src: Operand,
        eff_mask: u32,
        _now: u64,
        cfg: &GpuConfig,
        kctx: &KernelCtx<'_>,
        stats: &mut SimStats,
        cta_coords: (u32, u32, u32),
    ) {
        stats.atomic_instructions += 1;
        let launch = &kctx.program.launch;
        let (addrs, _r) = self.resolve_addrs(
            w,
            addr,
            eff_mask,
            launch,
            cta_coords,
            &mut crate::coproc::NullCoProcessor,
        );
        // Functional RMW deferred to the replay phase, which serializes
        // atomics across SMs in the serial SM-index order; source operands
        // are captured now, the old value lands in `dst` at replay (the
        // scoreboard holds `dst` pending until the fabric response).
        {
            let warp = self.warps[w].as_ref().unwrap();
            let mut mop = MemOp {
                kind: MemOpKind::Atomic { warp: w, dst, op },
                addrs: [None; 32],
                vals: [0; 32],
            };
            #[allow(clippy::needless_range_loop)] // lane also indexes warp operands
            for lane in 0..32 {
                let Some(a) = addrs[lane] else { continue };
                mop.addrs[lane] = Some(a);
                mop.vals[lane] = warp.operand(src, lane, launch, cta_coords);
            }
            self.mem_ops.push(mop);
        }
        let mut txns = std::mem::take(&mut self.txn_scratch);
        coalesce_into(&addrs, cfg.mem.line_bytes, &mut txns);
        for t in &txns {
            let token = self.next_token;
            self.next_token += 1;
            self.outstanding.push((
                token,
                LoadTrack {
                    warp: w,
                    dst: Some(dst),
                    unlock_line: None,
                },
            ));
            self.warps[w].as_mut().unwrap().mark_reg_pending(dst);
            self.lsu.push_back(LsuTxn {
                req: MemRequest {
                    sm: self.id,
                    line: t.line,
                    kind: ReqKind::Atomic,
                    client: Client::Lsu,
                    token,
                },
            });
        }
        self.txn_scratch = txns;
        stats.alu_lane_ops += eff_mask.count_ones() as u64;
    }

    /// Resolve per-lane addresses from the addressing mode; returns the DAC
    /// record kind when the mode was a dequeue form. Dequeued records hand
    /// over their address vector by move (no clone).
    fn resolve_addrs(
        &mut self,
        w: usize,
        addr: AddrMode,
        eff_mask: u32,
        launch: &simt_ir::LaunchConfig,
        cta_coords: (u32, u32, u32),
        coproc: &mut dyn CoProcessor,
    ) -> (Vec<Option<u64>>, Option<RecordKind>) {
        match addr {
            AddrMode::Reg(r, disp) => {
                let warp = self.warps[w].as_ref().unwrap();
                let v: Vec<Option<u64>> = (0..32)
                    .map(|lane| {
                        (eff_mask & (1 << lane) != 0).then(|| {
                            warp.operand(Operand::Reg(r), lane, launch, cta_coords)
                                .wrapping_add(disp as u64)
                        })
                    })
                    .collect();
                (v, None)
            }
            AddrMode::DeqData | AddrMode::DeqAddr => {
                let rec = coproc
                    .deq_record(self.id, w)
                    .expect("deq issued with empty PWAQ");
                (rec.thread_addrs, Some(rec.kind))
            }
        }
    }

    /// Rebase local-space addresses into each thread's private window,
    /// in place.
    fn translate_local(
        &self,
        w: usize,
        space: Space,
        addrs: &mut [Option<u64>],
        kctx: &KernelCtx<'_>,
    ) {
        if space != Space::Local {
            return;
        }
        let warp = self.warps[w].as_ref().unwrap();
        let tpc = kctx.program.launch.threads_per_cta() as u64;
        for (lane, a) in addrs.iter_mut().enumerate() {
            if let Some(a) = a {
                let gtid = warp.cta_linear * tpc + warp.thread_linear(lane);
                *a = LOCAL_BASE + gtid * LOCAL_STRIDE + (*a % LOCAL_STRIDE);
            }
        }
    }

    fn pump_lsu(&mut self, now: u64, fabric: &mut MemoryFabric, tracer: &mut dyn Tracer) {
        // One transaction per cycle reaches the L1 (one coalesced access
        // per cycle, as on Fermi).
        if let Some(txn) = self.lsu.front() {
            match fabric.access_traced(now, txn.req, tracer) {
                AccessOutcome::Accepted => {
                    let txn = self.lsu.pop_front().unwrap();
                    // Stores need no tracking (they were never inserted).
                    debug_assert!(
                        txn.req.kind != ReqKind::Store
                            || !self.outstanding.iter().any(|&(t, _)| t == txn.req.token)
                    );
                }
                AccessOutcome::Stall(_) => {}
            }
        }
    }

    fn resolve_barriers(&mut self, coproc: &mut dyn CoProcessor, stats: &mut SimStats) {
        let _ = stats;
        let sm_id = self.id;
        // Disjoint field borrows (no per-release clone of `cta.warps`).
        let Sm {
            cta_slots,
            warps,
            progress,
            ..
        } = self;
        for (slot, cs) in cta_slots.iter().enumerate() {
            let Some(cta) = cs.as_ref() else {
                continue;
            };
            let mut all_arrived = true;
            let mut any_waiting = false;
            for &wid in &cta.warps {
                if let Some(w) = warps[wid].as_ref() {
                    if w.done() {
                        continue;
                    }
                    if w.at_barrier {
                        any_waiting = true;
                    } else {
                        all_arrived = false;
                    }
                }
            }
            if any_waiting && all_arrived {
                *progress += 1;
                for &wid in &cta.warps {
                    if let Some(w) = warps[wid].as_mut() {
                        w.at_barrier = false;
                    }
                }
                coproc.on_barrier_release(sm_id, slot);
            }
        }
    }

    /// Retire CTAs whose warps have all finished (and drained), freeing
    /// their warp slots, registers, and shared memory. Returns how many
    /// CTAs retired this cycle. Allocation-free: the retiring `CtaInfo` is
    /// moved out of its slot, never cloned.
    pub fn retire_ctas(
        &mut self,
        coproc: &mut dyn CoProcessor,
        tracer: &mut dyn Tracer,
        now: u64,
    ) -> usize {
        let mut retired = 0;
        for slot in 0..self.cta_slots.len() {
            let Some(cta) = self.cta_slots[slot].as_ref() else {
                continue;
            };
            let all_done = cta.warps.iter().all(|&wid| {
                self.warps[wid]
                    .as_ref()
                    .map(|w| w.done() && w.scoreboard_clear())
                    .unwrap_or(true)
            });
            if !all_done {
                continue;
            }
            // Do not free warps with outstanding memory responses.
            let pending_mem = self
                .outstanding
                .iter()
                .any(|(_, t)| cta.warps.contains(&t.warp));
            if pending_mem {
                continue;
            }
            let cta = self.cta_slots[slot].take().unwrap();
            for &wid in &cta.warps {
                self.warps[wid] = None;
            }
            debug_assert!(self.used_regs >= cta.regs && self.used_shared >= cta.shared_bytes);
            self.used_regs -= cta.regs;
            self.used_shared -= cta.shared_bytes;
            self.progress += 1;
            coproc.on_cta_retire(self.id, slot);
            if tracer.enabled() {
                tracer.emit(
                    now,
                    TraceEvent::CtaRetire {
                        sm: self.id as u32,
                        slot: slot as u32,
                        kernel: cta.kernel as u32,
                    },
                );
            }
            retired += 1;
        }
        retired
    }
}

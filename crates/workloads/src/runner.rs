//! Run benchmarks under each design (baseline / CAE / MTA / DAC) and
//! classify them as compute- or memory-intensive (paper §5.1.2).

use crate::scenarios::Scenario;
use crate::Workload;
use affine::{decouple, AffineAnalysis, DecoupledKernel};
use dac_core::{Dac, DacConfig};
use gpu_baselines::{Cae, CaeConfig, Mta, MtaConfig};
use simt_mem::{MemConfig, SparseMemory};
use simt_sim::{
    CoProcessor, GpuConfig, GpuSim, NullCoProcessor, PlacementPolicy, SimReport, Stream,
    StreamLaunch, StreamReport,
};
use simt_trace::{NullTracer, Tracer};

/// The four hardware designs of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Unmodified GTX 480.
    Baseline,
    /// Compact Affine Execution (2 affine units / SM).
    Cae,
    /// Many-Thread Aware prefetching (+16 KB buffer / SM).
    Mta,
    /// Decoupled Affine Computation.
    Dac,
}

impl Design {
    /// All designs in report order.
    pub const ALL: [Design; 4] = [Design::Baseline, Design::Cae, Design::Mta, Design::Dac];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Design::Baseline => "baseline",
            Design::Cae => "cae",
            Design::Mta => "mta",
            Design::Dac => "dac",
        }
    }
}

/// The GPU configuration a design runs on: identical except MTA's extra
/// prefetch buffer (the paper's generous provisioning).
pub fn gpu_for(design: Design) -> GpuConfig {
    match design {
        Design::Mta => GpuConfig {
            mem: MemConfig::gtx480_with_prefetch_buffer(),
            ..GpuConfig::gtx480()
        },
        _ => GpuConfig::gtx480(),
    }
}

/// One benchmark run: report plus the memory image it produced.
pub struct BenchRun {
    /// The simulator report.
    pub report: SimReport,
    /// Final memory (for cross-design output checks).
    pub memory: SparseMemory,
    /// The decoupling result, for DAC runs.
    pub decoupled: Option<DecoupledKernel>,
}

/// Run `w` under `design` on `gpu` (pass [`gpu_for`]'s result, or a custom
/// configuration for ablations).
pub fn run_design(w: &Workload, design: Design, gpu: &GpuSim) -> BenchRun {
    run_design_traced(w, design, gpu, &mut NullTracer)
}

/// [`run_design`] with an event tracer attached. Tracing is pure
/// observation: the returned report is identical to the untraced run.
pub fn run_design_traced(
    w: &Workload,
    design: Design,
    gpu: &GpuSim,
    tracer: &mut dyn Tracer,
) -> BenchRun {
    let mut memory = w.fresh_memory();
    match design {
        Design::Baseline => {
            let mut nop = simt_sim::NullCoProcessor;
            let report = gpu.run_traced(&w.program(), &mut memory, &mut nop, tracer);
            BenchRun {
                report,
                memory,
                decoupled: None,
            }
        }
        Design::Cae => {
            let mut cae = Cae::new(CaeConfig::default());
            let report = gpu.run_traced(&w.program(), &mut memory, &mut cae, tracer);
            BenchRun {
                report,
                memory,
                decoupled: None,
            }
        }
        Design::Mta => {
            let mut mta = Mta::new(MtaConfig::default());
            let report = gpu.run_traced(&w.program(), &mut memory, &mut mta, tracer);
            BenchRun {
                report,
                memory,
                decoupled: None,
            }
        }
        Design::Dac => run_dac_traced(w, gpu, DacConfig::paper(), tracer),
    }
}

/// Run DAC with an explicit configuration (ablation entry point).
pub fn run_dac(w: &Workload, gpu: &GpuSim, cfg: DacConfig) -> BenchRun {
    run_dac_traced(w, gpu, cfg, &mut NullTracer)
}

/// [`run_dac`] with an event tracer attached.
pub fn run_dac_traced(
    w: &Workload,
    gpu: &GpuSim,
    cfg: DacConfig,
    tracer: &mut dyn Tracer,
) -> BenchRun {
    let analysis = AffineAnalysis::run(&w.kernel);
    let dk = decouple(&w.kernel, &analysis);
    let mut memory = w.fresh_memory();
    let program = simt_ir::Program::new(dk.non_affine.clone(), w.launch.clone())
        .expect("decoupled kernel invalid");
    let mut dac = Dac::new(cfg, dk);
    let report = gpu.run_traced(&program, &mut memory, &mut dac, tracer);
    BenchRun {
        report,
        memory,
        decoupled: Some(dac.decoupled().clone()),
    }
}

/// One scenario run: the stream report (chip-wide + per-kernel stats)
/// plus the memory image it produced.
pub struct ScenarioRun {
    /// The simulator report, including one [`simt_sim::KernelReport`] per
    /// launch (stream-major).
    pub report: StreamReport,
    /// Final memory (for per-kernel cross-design output checks).
    pub memory: SparseMemory,
}

/// Owned per-kernel coprocessor storage for a scenario run (one instance
/// per launch; the GPU routes per-SM hooks to the owning kernel's
/// instance).
enum ScenarioCo {
    Null(NullCoProcessor),
    Cae(Box<Cae>),
    Mta(Box<Mta>),
    Dac(Box<Dac>),
}

impl ScenarioCo {
    fn as_dyn(&mut self) -> &mut dyn CoProcessor {
        match self {
            ScenarioCo::Null(c) => c,
            ScenarioCo::Cae(c) => &mut **c,
            ScenarioCo::Mta(c) => &mut **c,
            ScenarioCo::Dac(c) => &mut **c,
        }
    }
}

/// Run a multi-kernel scenario under `design` at paper-default DAC
/// configuration. Each launch gets its own coprocessor instance (for DAC,
/// its own decoupled kernel); streams run concurrently under `policy`.
pub fn run_scenario_design(
    sc: &Scenario,
    design: Design,
    gpu: &GpuSim,
    policy: PlacementPolicy,
) -> ScenarioRun {
    run_scenario_design_traced(sc, design, gpu, policy, DacConfig::paper(), &mut NullTracer)
}

/// [`run_scenario_design`] with an explicit DAC configuration (used only
/// when `design` is [`Design::Dac`]) and an event tracer attached.
pub fn run_scenario_design_traced(
    sc: &Scenario,
    design: Design,
    gpu: &GpuSim,
    policy: PlacementPolicy,
    dac: DacConfig,
    tracer: &mut dyn Tracer,
) -> ScenarioRun {
    let mut memory = sc.fresh_memory();
    let mut streams: Vec<Stream> = Vec::new();
    let mut owned: Vec<ScenarioCo> = Vec::new();
    for s in &sc.streams {
        let mut launches = Vec::new();
        for k in s {
            let (program, co) = match design {
                Design::Baseline => (k.program(), ScenarioCo::Null(NullCoProcessor)),
                Design::Cae => (
                    k.program(),
                    ScenarioCo::Cae(Box::new(Cae::new(CaeConfig::default()))),
                ),
                Design::Mta => (
                    k.program(),
                    ScenarioCo::Mta(Box::new(Mta::new(MtaConfig::default()))),
                ),
                Design::Dac => {
                    let analysis = AffineAnalysis::run(&k.kernel);
                    let dk = decouple(&k.kernel, &analysis);
                    let program = simt_ir::Program::new(dk.non_affine.clone(), k.launch.clone())
                        .expect("decoupled scenario kernel invalid");
                    (
                        program,
                        ScenarioCo::Dac(Box::new(Dac::new(dac.clone(), dk))),
                    )
                }
            };
            launches.push(StreamLaunch::labelled(program, k.label));
            owned.push(co);
        }
        streams.push(Stream::of(launches));
    }
    let coprocs: Vec<&mut dyn CoProcessor> = owned.iter_mut().map(ScenarioCo::as_dyn).collect();
    let report = gpu.run_streams_traced(&streams, &mut memory, coprocs, policy, tracer);
    ScenarioRun { report, memory }
}

/// Classify a benchmark: memory-intensive iff perfect memory yields ≥ 1.5×
/// (paper §5.1.2). Returns `(is_memory_intensive, perfect_speedup)`.
pub fn classify(w: &Workload) -> (bool, f64) {
    let gpu = GpuSim::new(GpuConfig::gtx480());
    let mut m1 = w.fresh_memory();
    let base = gpu.run(&w.program(), &mut m1);
    let perfect_gpu = GpuSim::new(GpuConfig::gtx480_perfect_mem());
    let mut m2 = w.fresh_memory();
    let perf = perfect_gpu.run(&w.program(), &mut m2);
    let speedup = base.cycles as f64 / perf.cycles as f64;
    (speedup >= 1.5, speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_have_names() {
        for d in Design::ALL {
            assert!(!d.name().is_empty());
        }
        assert!(gpu_for(Design::Mta).mem.prefetch_buffer_size > 0);
        assert_eq!(gpu_for(Design::Dac).mem.prefetch_buffer_size, 0);
    }

    /// Every design must produce bit-identical per-kernel outputs on every
    /// multi-stream scenario, and report per-kernel stats for every launch.
    #[test]
    fn scenarios_agree_on_outputs_across_designs() {
        for sc in crate::all_scenarios(1) {
            let base = run_scenario_design(
                &sc,
                Design::Baseline,
                &GpuSim::new(simt_sim::GpuConfig::test_small()),
                PlacementPolicy::Greedy,
            );
            let golden = sc.output_words(&base.memory);
            assert_eq!(base.report.per_kernel.len(), sc.kernels().len());
            for (k, sk) in base.report.per_kernel.iter().zip(sc.kernels()) {
                assert_eq!(k.label, sk.label, "{}: per-kernel order", sc.name);
                assert_eq!(k.ctas, sk.launch.num_ctas(), "{}: CTA count", sc.name);
                assert!(k.stats.ctas_launched == k.ctas, "{}: all CTAs ran", sc.name);
            }
            for d in [Design::Cae, Design::Mta, Design::Dac] {
                for policy in [PlacementPolicy::Greedy, PlacementPolicy::RoundRobin] {
                    let gpu = GpuSim::new(simt_sim::GpuConfig {
                        mem: gpu_for(d).mem,
                        ..simt_sim::GpuConfig::test_small()
                    });
                    let run = run_scenario_design(&sc, d, &gpu, policy);
                    assert_eq!(
                        sc.output_words(&run.memory),
                        golden,
                        "design {:?}/{:?} diverged on {}",
                        d,
                        policy,
                        sc.name
                    );
                }
            }
        }
    }

    /// Every design must produce bit-identical outputs on a workload with
    /// atomics, shared memory, and divergence.
    #[test]
    fn designs_agree_on_outputs() {
        let w = crate::benchmark("HI", 1).unwrap();
        let base = run_design(
            &w,
            Design::Baseline,
            &GpuSim::new(simt_sim::GpuConfig::test_small()),
        );
        let golden = base.memory.read_u32_vec(w.output.0, w.output.1);
        for d in [Design::Cae, Design::Mta, Design::Dac] {
            let gpu = GpuSim::new(simt_sim::GpuConfig {
                mem: gpu_for(d).mem,
                ..simt_sim::GpuConfig::test_small()
            });
            let run = run_design(&w, d, &gpu);
            assert_eq!(
                run.memory.read_u32_vec(w.output.0, w.output.1),
                golden,
                "design {:?} diverged on {}",
                d,
                w.abbr
            );
        }
    }
}

//! Control-flow graph, post-dominators, and reaching definitions.
//!
//! Two consumers drive this module's design:
//!
//! * the simulator's SIMT reconvergence stack needs, for every branch, the
//!   PC where diverged threads reconverge — the immediate post-dominator of
//!   the branch's block (the policy GPGPU-sim uses);
//! * the affine decoupling compiler performs reaching-definition analysis to
//!   propagate affine types (paper §4.7) and uses nearest common
//!   post-dominators to place divergent-affine conditions (§4.6/4.7).

use crate::instr::Instr;
use crate::kernel::Kernel;
use crate::types::{PredId, RegId};
use std::collections::HashMap;

/// A basic block: a half-open instruction range plus graph edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction PC.
    pub start: usize,
    /// One past the last instruction PC.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// The control-flow graph of a kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order.
    pub blocks: Vec<Block>,
    /// Map from instruction PC to owning block id.
    pub block_of: Vec<usize>,
    /// Immediate post-dominator of each block (`None` ⇒ post-dominated only
    /// by the virtual exit, i.e. reconverges at thread exit).
    pub ipostdom: Vec<Option<usize>>,
    /// For each branch PC, the reconvergence PC (`usize::MAX` ⇒ exit).
    pub reconvergence: HashMap<usize, usize>,
}

impl Cfg {
    /// Build the CFG and reconvergence analysis for a kernel.
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.instrs.len();
        assert!(n > 0, "empty kernel");

        // Leaders: entry, branch targets, and instructions following control.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, i) in kernel.instrs.iter().enumerate() {
            match i {
                Instr::Bra { target, .. } => {
                    leader[*target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Exit if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        #[allow(clippy::needless_range_loop)] // pc/b index several arrays in lockstep
        for pc in 1..=n {
            if pc == n || leader[pc] {
                let id = blocks.len();
                for b in start..pc {
                    block_of[b] = id;
                }
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc;
            }
        }

        // Edges.
        let nb = blocks.len();
        #[allow(clippy::needless_range_loop)] // b also names successor blocks
        for b in 0..nb {
            let last = blocks[b].end - 1;
            match &kernel.instrs[last] {
                Instr::Bra { target, pred } => {
                    let t = block_of[*target];
                    let mut succs = vec![t];
                    if pred.is_some() && b + 1 < nb && !succs.contains(&(b + 1)) {
                        succs.push(b + 1);
                    }
                    blocks[b].succs = succs;
                }
                Instr::Exit => {}
                _ => {
                    if b + 1 < nb {
                        blocks[b].succs = vec![b + 1];
                    }
                }
            }
        }
        for b in 0..nb {
            let succs = blocks[b].succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }

        let ipostdom = compute_ipostdom(&blocks);

        // Reconvergence PC for every branch instruction.
        let mut reconvergence = HashMap::new();
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Instr::Bra { .. } = i {
                let b = block_of[pc];
                let r = match ipostdom[b] {
                    Some(p) => blocks[p].start,
                    None => usize::MAX,
                };
                reconvergence.insert(pc, r);
            }
        }

        Cfg {
            blocks,
            block_of,
            ipostdom,
            reconvergence,
        }
    }

    /// Nearest common post-dominator of two blocks (`None` ⇒ exit).
    pub fn common_postdom(&self, a: usize, b: usize) -> Option<usize> {
        // Walk a's ipostdom chain into a set, then walk b's chain until a hit.
        let mut chain = Vec::new();
        let mut x = Some(a);
        while let Some(cur) = x {
            chain.push(cur);
            x = self.ipostdom[cur];
        }
        let mut y = Some(b);
        while let Some(cur) = y {
            if chain.contains(&cur) {
                return Some(cur);
            }
            y = self.ipostdom[cur];
        }
        None
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the CFG has no blocks (never occurs for valid kernels).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Immediate post-dominators via the classic full-bitset data-flow
/// formulation: `PDOM(b) = {b} ∪ ⋂_{s∈succ(b)} PDOM(s)`, with a virtual exit
/// node (index `n`) that every successor-less block flows into. Kernels are
/// tiny (tens of blocks), so the O(n²) sets are a non-issue and the
/// formulation is robust to self-loops and irreducible shapes.
fn compute_ipostdom(blocks: &[Block]) -> Vec<Option<usize>> {
    let n = blocks.len();
    let total = n + 1; // + virtual exit
    let words = total.div_ceil(64);
    let virt = n;

    let full = {
        let mut v = vec![!0u64; words];
        // Clear bits above `total`.
        let extra = words * 64 - total;
        if extra > 0 {
            v[words - 1] >>= extra;
        }
        v
    };
    let mut pdom: Vec<Vec<u64>> = vec![full.clone(); total];
    // Virtual exit post-dominates only itself.
    pdom[virt] = vec![0u64; words];
    pdom[virt][virt / 64] |= 1 << (virt % 64);

    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut newset = full.clone();
            if blocks[b].succs.is_empty() {
                newset.copy_from_slice(&pdom[virt]);
            } else {
                for &s in &blocks[b].succs {
                    for w in 0..words {
                        newset[w] &= pdom[s][w];
                    }
                }
            }
            newset[b / 64] |= 1 << (b % 64);
            if newset != pdom[b] {
                pdom[b] = newset;
                changed = true;
            }
        }
    }

    let contains = |set: &[u64], i: usize| set[i / 64] & (1 << (i % 64)) != 0;

    // ipdom(b) = the strict post-dominator of b nearest to b. Strict
    // post-dominators of b form a chain under post-dominance; the nearest is
    // the one whose own PDOM set is largest (it is post-dominated by all the
    // others plus itself).
    let mut ipdom = vec![None; n];
    for b in 0..n {
        let mut best: Option<(usize, u32)> = None;
        for p in 0..n {
            if p != b && contains(&pdom[b], p) {
                let size: u32 = pdom[p].iter().map(|w| w.count_ones()).sum();
                if best.is_none_or(|(_, s)| size > s) {
                    best = Some((p, size));
                }
            }
        }
        ipdom[b] = best.map(|(p, _)| p);
    }
    ipdom
}

/// What an instruction defines, for reaching-definition analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefTarget {
    /// A general-purpose register.
    Reg(RegId),
    /// A predicate register.
    Pred(PredId),
}

/// Reaching definitions: for every instruction, which definition sites (PCs)
/// of each register may reach it.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites `(pc, target)` in program order.
    pub sites: Vec<(usize, DefTarget)>,
    /// Per-instruction IN sets, as indices into `sites` (sorted).
    ins: Vec<Vec<u32>>,
}

impl ReachingDefs {
    /// Run the analysis for `kernel` over `cfg`.
    pub fn compute(kernel: &Kernel, cfg: &Cfg) -> ReachingDefs {
        let mut sites: Vec<(usize, DefTarget)> = Vec::new();
        let mut site_of_pc: HashMap<usize, usize> = HashMap::new();
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Some(r) = i.def_reg() {
                site_of_pc.insert(pc, sites.len());
                sites.push((pc, DefTarget::Reg(r)));
            } else if let Some(p) = i.def_pred() {
                site_of_pc.insert(pc, sites.len());
                sites.push((pc, DefTarget::Pred(p)));
            }
        }
        let ns = sites.len();
        let words = ns.div_ceil(64);
        let nb = cfg.blocks.len();

        // GEN/KILL per block.
        let mut gen = vec![vec![0u64; words]; nb];
        let mut kill = vec![vec![0u64; words]; nb];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for pc in blk.start..blk.end {
                if let Some(&s) = site_of_pc.get(&pc) {
                    let tgt = sites[s].1;
                    // Kill all other defs of the same target.
                    for (o, &(_, ot)) in sites.iter().enumerate() {
                        if o != s && ot == tgt {
                            kill[b][o / 64] |= 1 << (o % 64);
                            gen[b][o / 64] &= !(1 << (o % 64));
                        }
                    }
                    gen[b][s / 64] |= 1 << (s % 64);
                    kill[b][s / 64] &= !(1 << (s % 64));
                }
            }
        }

        // Block IN via forward iteration.
        let mut bin = vec![vec![0u64; words]; nb];
        let mut bout = vec![vec![0u64; words]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut newin = vec![0u64; words];
                for &p in &cfg.blocks[b].preds {
                    for w in 0..words {
                        newin[w] |= bout[p][w];
                    }
                }
                let mut newout = vec![0u64; words];
                for w in 0..words {
                    newout[w] = gen[b][w] | (newin[w] & !kill[b][w]);
                }
                if newin != bin[b] || newout != bout[b] {
                    bin[b] = newin;
                    bout[b] = newout;
                    changed = true;
                }
            }
        }

        // Per-instruction IN by walking each block forward.
        let mut ins = vec![Vec::new(); kernel.instrs.len()];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            let mut cur = bin[b].clone();
            #[allow(clippy::needless_range_loop)] // pc is a kernel address, not just an index
            for pc in blk.start..blk.end {
                let mut v = Vec::new();
                for (s, _) in sites.iter().enumerate() {
                    if cur[s / 64] & (1 << (s % 64)) != 0 {
                        v.push(s as u32);
                    }
                }
                ins[pc] = v;
                if let Some(&s) = site_of_pc.get(&pc) {
                    let tgt = sites[s].1;
                    for (o, &(_, ot)) in sites.iter().enumerate() {
                        if ot == tgt {
                            cur[o / 64] &= !(1 << (o % 64));
                        }
                    }
                    cur[s / 64] |= 1 << (s % 64);
                }
            }
        }

        ReachingDefs { sites, ins }
    }

    /// Definition PCs of general register `r` that reach instruction `pc`.
    pub fn reg_defs_at(&self, pc: usize, r: RegId) -> Vec<usize> {
        self.ins[pc]
            .iter()
            .filter_map(|&s| {
                let (dpc, t) = self.sites[s as usize];
                (t == DefTarget::Reg(r)).then_some(dpc)
            })
            .collect()
    }

    /// Definition PCs of predicate `p` that reach instruction `pc`.
    pub fn pred_defs_at(&self, pc: usize, p: PredId) -> Vec<usize> {
        self.ins[pc]
            .iter()
            .filter_map(|&s| {
                let (dpc, t) = self.sites[s as usize];
                (t == DefTarget::Pred(p)).then_some(dpc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::{CmpOp, Op};
    use crate::types::Operand;

    /// Diamond: entry → (then | else) → join → exit.
    fn diamond() -> Kernel {
        let mut b = KernelBuilder::new("d", 1);
        let t = b.tid_linear_x(); // pc0 (block0)
        let p = b.setp(CmpOp::Lt, Operand::Reg(t), Operand::Param(0)); // pc1
        let x = b.reg();
        b.bra_if(p, "then"); // pc2 end of block0
        b.alu_into(x, Op::Mov, &[Operand::Imm(1)]); // pc3 block1 (else)
        b.bra("join"); // pc4
        b.label("then");
        b.alu_into(x, Op::Mov, &[Operand::Imm(2)]); // pc5 block2
        b.label("join");
        let _ = b.alu2(Op::Add, Operand::Reg(x), Operand::Imm(0)); // pc6 block3
        b.exit(); // pc7
        b.build()
    }

    #[test]
    fn diamond_blocks_and_edges() {
        let k = diamond();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        assert!(cfg.blocks[3].succs.is_empty());
        assert_eq!(cfg.blocks[3].preds.len(), 2);
    }

    #[test]
    fn diamond_reconvergence_at_join() {
        let k = diamond();
        let cfg = Cfg::build(&k);
        // Branch at pc2 reconverges at the join block start (pc6).
        assert_eq!(cfg.reconvergence[&2], 6);
        // ipostdom of blocks 1 and 2 is block 3.
        assert_eq!(cfg.ipostdom[1], Some(3));
        assert_eq!(cfg.ipostdom[2], Some(3));
        assert_eq!(cfg.common_postdom(1, 2), Some(3));
    }

    #[test]
    fn loop_reconvergence() {
        let mut b = KernelBuilder::new("l", 1);
        let i = b.mov(Operand::Imm(0)); // pc0
        b.label("top");
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]); // pc1
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(0)); // pc2
        b.bra_if(p, "top"); // pc3
        b.exit(); // pc4
        let k = b.build();
        let cfg = Cfg::build(&k);
        // Backward branch reconverges at the fall-through exit block.
        assert_eq!(cfg.reconvergence[&3], 4);
    }

    #[test]
    fn exit_only_reconvergence_is_max() {
        // if (p) exit; else exit — both sides exit, reconverge at virtual exit.
        let mut b = KernelBuilder::new("e", 1);
        let t = b.tid_linear_x();
        let p = b.setp(CmpOp::Lt, Operand::Reg(t), Operand::Param(0));
        b.bra_if(p, "a");
        b.exit();
        b.label("a");
        b.exit();
        let k = b.build();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.reconvergence[&2], usize::MAX);
    }

    #[test]
    fn reaching_defs_diamond_merge() {
        let k = diamond();
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::compute(&k, &cfg);
        // At the join use (pc6), x (reg id 1) has two reaching defs: pc3, pc5.
        let mut defs = rd.reg_defs_at(6, 1);
        defs.sort_unstable();
        assert_eq!(defs, vec![3, 5]);
        // At pc6 the tid register has exactly one def (pc0).
        assert_eq!(rd.reg_defs_at(6, 0), vec![0]);
    }

    #[test]
    fn reaching_defs_loop_carried() {
        let mut b = KernelBuilder::new("l", 1);
        let i = b.mov(Operand::Imm(0)); // pc0 def i
        b.label("top");
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]); // pc1 def+use i
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(0)); // pc2
        b.bra_if(p, "top"); // pc3
        b.exit();
        let k = b.build();
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::compute(&k, &cfg);
        // The use at pc1 sees both the init (pc0) and the loop-carried (pc1).
        let mut defs = rd.reg_defs_at(1, i);
        defs.sort_unstable();
        assert_eq!(defs, vec![0, 1]);
    }
}

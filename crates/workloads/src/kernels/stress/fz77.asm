.kernel fz77
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    xor r3, r0, 1;
    and r4, r2, 7;
    mad r5, r4, 4, %p3;
    and r6, r3, 65535;
    atom.max r7, [r5+0], r6;
    mad r8, r0, 2, 27;
    mad r9, r8, 4, %p0;
    ld.global.b32 r10, [r9];
    add r11, r3, r0;
    mad r12, r0, 1, 50;
    mad r13, r12, 4, %p1;
    ld.global.b32 r14, [r13];
    and r15, r1, 7;
    mad r16, r1, 3, 38;
    and r17, r16, 4095;
    mad r18, r17, 4, %p1;
    ld.global.b32 r19, [r18];
    mad r20, r0, 4, %p2;
    st.global.b32 [r20], r19;
    exit;

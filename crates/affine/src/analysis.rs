//! Static affine analysis (paper §4.7): operand classification by
//! reaching-definition dataflow, divergent-affine analysis, and candidate
//! selection for decoupling.

use crate::class::{operand_class, predicate_decoupleable, transfer, AffClass};
use simt_ir::cfg::{Cfg, ReachingDefs};
use simt_ir::{AddrMode, Instr, InstrClass, Kernel, Operand, PredSrc, Space};
use std::collections::HashSet;

/// What a decoupling candidate becomes in the affine stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// A global/local load → `enq.data` / `ld deq.data` (early request).
    LoadData,
    /// A global/local store → `enq.addr` / `st [deq.addr]`.
    StoreAddr,
    /// A predicate computation feeding only branches → `enq.pred` /
    /// `@deq.pred bra`.
    Pred,
}

/// One instruction eligible for decoupling, with its backward slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// PC of the memory / predicate instruction.
    pub pc: usize,
    /// What it becomes.
    pub kind: CandidateKind,
    /// PCs of the (affine) instructions computing its address/operands,
    /// sorted ascending.
    pub slice: Vec<usize>,
    /// Divergent affine conditions consumed (≤ 2, paper §4.6).
    pub div_conditions: usize,
}

/// Static instruction-mix statistics for Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticMix {
    /// Total static instructions.
    pub total: usize,
    /// Potentially-affine arithmetic instructions.
    pub affine_arithmetic: usize,
    /// Memory instructions with affine addresses.
    pub affine_memory: usize,
    /// Branches with decoupleable predicates.
    pub affine_branch: usize,
}

impl StaticMix {
    /// Fraction of static instructions that are potentially affine, in
    /// [0, 1] (the height of a Figure 6 bar).
    pub fn potential_affine_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.affine_arithmetic + self.affine_memory + self.affine_branch) as f64
            / self.total as f64
    }
}

/// The result of running the analysis on one kernel.
#[derive(Debug)]
pub struct AffineAnalysis {
    /// Class of each instruction's defined value (`NonAffine` for
    /// instructions defining nothing).
    pub def_class: Vec<AffClass>,
    /// Per-`SetP` flag: decoupleable by the PEU.
    pub pred_decoupleable: Vec<bool>,
    /// Per-pc flag: divergence-extended op (min/max/abs/sel on affine).
    pub divergent_op: Vec<bool>,
    /// Per-pc flag: under non-decoupleable (data-dependent) control flow.
    pub tainted: Vec<bool>,
    /// Eligible decoupling candidates.
    pub candidates: Vec<Candidate>,
    /// The CFG (shared with the decoupler).
    pub cfg: Cfg,
    /// Reaching definitions (shared with the decoupler).
    pub rd: ReachingDefs,
    /// Block dominator sets (bitsets over blocks), for divergent-merge
    /// detection.
    dom: Vec<Vec<u64>>,
}

impl AffineAnalysis {
    /// Run the full analysis.
    pub fn run(kernel: &Kernel) -> AffineAnalysis {
        let cfg = Cfg::build(kernel);
        let rd = ReachingDefs::compute(kernel, &cfg);
        let n = kernel.instrs.len();
        let dom = compute_dominators(&cfg);

        let mut a = AffineAnalysis {
            def_class: vec![AffClass::Scalar; n],
            pred_decoupleable: vec![false; n],
            divergent_op: vec![false; n],
            tainted: vec![false; n],
            candidates: Vec::new(),
            cfg,
            rd,
            dom,
        };
        a.classify(kernel);
        a.taint(kernel);
        a.find_candidates(kernel);
        a
    }

    /// Class of register `r` as used at `pc` (join over reaching defs).
    pub fn use_class(&self, pc: usize, r: u16) -> AffClass {
        let defs = self.rd.reg_defs_at(pc, r);
        if defs.is_empty() {
            return AffClass::NonAffine; // uninitialized
        }
        defs.iter()
            .map(|&d| self.def_class[d])
            .fold(AffClass::Scalar, AffClass::join)
    }

    fn src_class(&self, pc: usize, op: Operand) -> AffClass {
        match op {
            Operand::Reg(r) => self.use_class(pc, r),
            other => operand_class(other),
        }
    }

    /// Are all reaching definitions of predicate `p` at `pc` decoupleable
    /// `setp`s?
    pub fn pred_use_decoupleable(&self, pc: usize, p: u16) -> bool {
        let defs = self.rd.pred_defs_at(pc, p);
        !defs.is_empty() && defs.iter().all(|&d| self.pred_decoupleable[d])
    }

    fn classify(&mut self, kernel: &Kernel) {
        // Monotone ascending fixpoint from ⊥ = Scalar.
        let mut changed = true;
        while changed {
            changed = false;
            for (pc, i) in kernel.instrs.iter().enumerate() {
                let (new_class, new_div, new_dec) = match i {
                    Instr::Alu {
                        op, srcs, guard, ..
                    } => {
                        let cls: Vec<AffClass> = srcs[..op.arity()]
                            .iter()
                            .map(|&s| self.src_class(pc, s))
                            .collect();
                        let t = transfer(*op, &cls);
                        // A guarded write needs the guard predicate to be
                        // affine-computable, and counts as divergence.
                        let (class, div) = match guard {
                            Some(g) if t.class.is_affine() => {
                                if self.pred_use_decoupleable(pc, g.pred) {
                                    (t.class, true)
                                } else {
                                    (AffClass::NonAffine, false)
                                }
                            }
                            _ => (t.class, t.divergent),
                        };
                        (class, div, false)
                    }
                    Instr::Sel { pred, a, b, .. } => {
                        let ca = self.src_class(pc, *a);
                        let cb = self.src_class(pc, *b);
                        let cls = ca.join(cb);
                        if cls <= AffClass::Affine && self.pred_use_decoupleable(pc, pred.pred) {
                            (AffClass::Affine, true, false)
                        } else {
                            (AffClass::NonAffine, false, false)
                        }
                    }
                    Instr::SetP {
                        cmp: _,
                        a,
                        b,
                        float,
                        ..
                    } => {
                        let ca = self.src_class(pc, *a);
                        let cb = self.src_class(pc, *b);
                        (
                            AffClass::NonAffine,
                            false,
                            predicate_decoupleable(ca, cb, *float),
                        )
                    }
                    // Loads/atomics produce memory data.
                    Instr::Ld { .. } | Instr::Atom { .. } => (AffClass::NonAffine, false, false),
                    _ => (AffClass::NonAffine, false, false),
                };
                if self.def_class[pc] != new_class {
                    // Ascending only (monotone).
                    debug_assert!(new_class >= self.def_class[pc]);
                    self.def_class[pc] = new_class;
                    changed = true;
                }
                if self.divergent_op[pc] != new_div {
                    self.divergent_op[pc] = new_div;
                    changed = true;
                }
                if self.pred_decoupleable[pc] != new_dec {
                    self.pred_decoupleable[pc] = new_dec;
                    changed = true;
                }
            }
        }
    }

    /// Mark the regions controlled by non-decoupleable (data-dependent)
    /// branches: instructions there cannot be decoupled, and the affine
    /// stream omits them wholesale (see DESIGN.md).
    fn taint(&mut self, kernel: &Kernel) {
        for (pc, i) in kernel.instrs.iter().enumerate() {
            let Instr::Bra { target, pred } = i else {
                continue;
            };
            let decoupleable = match pred {
                None => true,
                Some(PredSrc::Reg(g)) => self.pred_use_decoupleable(pc, g.pred),
                Some(PredSrc::Deq { .. }) => true,
            };
            if decoupleable {
                continue;
            }
            let (lo, hi) = if *target > pc {
                // Forward: region up to the reconvergence point.
                let rpc = self
                    .cfg
                    .reconvergence
                    .get(&pc)
                    .copied()
                    .unwrap_or(usize::MAX);
                (pc + 1, rpc.min(kernel.instrs.len()))
            } else {
                // Backward (data-dependent loop): the whole loop body.
                (*target, pc + 1)
            };
            // The branch itself is tainted too (it cannot be replicated).
            self.tainted[pc] = true;
            for t in lo..hi {
                self.tainted[t] = true;
            }
        }
    }

    /// Do two definition blocks form a *divergent* merge (neither dominates
    /// the other — an if/else diamond rather than a loop-carried update)?
    fn divergent_merge(&self, defs: &[usize]) -> bool {
        let blocks: Vec<usize> = defs.iter().map(|&d| self.cfg.block_of[d]).collect();
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let (a, b) = (blocks[i], blocks[j]);
                if a == b {
                    continue;
                }
                let a_dom_b = self.dom[b][a / 64] & (1 << (a % 64)) != 0;
                let b_dom_a = self.dom[a][b / 64] & (1 << (b % 64)) != 0;
                if !a_dom_b && !b_dom_a {
                    return true;
                }
            }
        }
        false
    }

    /// Walk the backward slice of `roots` (register operands at `pc`).
    /// Returns `(slice_pcs, divergent_conditions)` or `None` if ineligible.
    fn walk_slice(&self, kernel: &Kernel, pc: usize, roots: &[u16]) -> Option<(Vec<usize>, usize)> {
        let mut slice: HashSet<usize> = HashSet::new();
        let mut div_sites: HashSet<Vec<usize>> = HashSet::new();
        let mut stack: Vec<(usize, u16)> = roots.iter().map(|&r| (pc, r)).collect();
        let mut visited: HashSet<(usize, u16)> = HashSet::new();

        while let Some((use_pc, reg)) = stack.pop() {
            if !visited.insert((use_pc, reg)) {
                continue;
            }
            let mut defs = self.rd.reg_defs_at(use_pc, reg);
            defs.sort_unstable();
            if defs.is_empty() {
                return None; // uninitialized input
            }
            if defs.len() > 1 && self.divergent_merge(&defs) {
                div_sites.insert(defs.clone());
            }
            for d in defs {
                if self.tainted[d] || !self.def_class[d].is_affine() {
                    return None;
                }
                if slice.insert(d) {
                    let instr = &kernel.instrs[d];
                    if self.divergent_op[d] {
                        div_sites.insert(vec![d]);
                    }
                    for r in instr.src_regs() {
                        stack.push((d, r));
                    }
                    // Guards and sel conditions: the predicate's setp and
                    // its own slice must come along too.
                    for p in instr.src_preds() {
                        for pd in self.rd.pred_defs_at(d, p) {
                            if !self.pred_decoupleable[pd] || self.tainted[pd] {
                                return None;
                            }
                            if slice.insert(pd) {
                                for r in kernel.instrs[pd].src_regs() {
                                    stack.push((pd, r));
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut v: Vec<usize> = slice.into_iter().collect();
        v.sort_unstable();
        Some((v, div_sites.len()))
    }

    fn find_candidates(&mut self, kernel: &Kernel) {
        let mut cands = Vec::new();
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if self.tainted[pc] {
                continue;
            }
            match i {
                Instr::Ld {
                    space: Space::Global | Space::Local,
                    addr: AddrMode::Reg(r, _),
                    guard,
                    ..
                }
                | Instr::St {
                    space: Space::Global | Space::Local,
                    addr: AddrMode::Reg(r, _),
                    guard,
                    ..
                } => {
                    if !self.use_class(pc, *r).is_affine() {
                        continue;
                    }
                    // A guard must itself be decoupleable (the enq carries
                    // it in the affine stream).
                    let mut roots = vec![*r];
                    if let Some(g) = guard {
                        if !self.pred_use_decoupleable(pc, g.pred) {
                            continue;
                        }
                        let _ = g;
                    }
                    // Guard slice comes along via src_preds below.
                    let Some((mut slice, mut div)) = self.walk_slice(kernel, pc, &roots) else {
                        continue;
                    };
                    if let Some(g) = guard {
                        let mut ok = true;
                        for pd in self.rd.pred_defs_at(pc, g.pred) {
                            if !self.pred_decoupleable[pd] || self.tainted[pd] {
                                ok = false;
                                break;
                            }
                            if !slice.contains(&pd) {
                                if let Some((s2, d2)) =
                                    self.walk_slice(kernel, pd, &kernel.instrs[pd].src_regs())
                                {
                                    slice.push(pd);
                                    slice.extend(s2);
                                    div += d2;
                                } else {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if !ok {
                            continue;
                        }
                        div += 1; // the guard itself is a condition
                        slice.sort_unstable();
                        slice.dedup();
                    }
                    roots.clear();
                    if div > 2 {
                        continue;
                    }
                    let kind = if matches!(i, Instr::Ld { .. }) {
                        CandidateKind::LoadData
                    } else {
                        CandidateKind::StoreAddr
                    };
                    cands.push(Candidate {
                        pc,
                        kind,
                        slice,
                        div_conditions: div,
                    });
                }
                Instr::SetP { a, b, .. } => {
                    if !self.pred_decoupleable[pc] {
                        continue;
                    }
                    // Only decouple predicates consumed exclusively by
                    // branches (guards must read the register directly).
                    let dst = i.def_pred().unwrap();
                    let mut used_by_branch = false;
                    let mut used_elsewhere = false;
                    for (upc, u) in kernel.instrs.iter().enumerate() {
                        let reads = u.src_preds().contains(&dst)
                            && self.rd.pred_defs_at(upc, dst).contains(&pc);
                        if !reads {
                            continue;
                        }
                        if matches!(u, Instr::Bra { .. }) {
                            used_by_branch = true;
                        } else {
                            used_elsewhere = true;
                        }
                    }
                    if !used_by_branch || used_elsewhere {
                        continue;
                    }
                    let mut roots = Vec::new();
                    if let Operand::Reg(r) = a {
                        roots.push(*r);
                    }
                    if let Operand::Reg(r) = b {
                        roots.push(*r);
                    }
                    let Some((slice, div)) = self.walk_slice(kernel, pc, &roots) else {
                        continue;
                    };
                    if div > 2 {
                        continue;
                    }
                    cands.push(Candidate {
                        pc,
                        kind: CandidateKind::Pred,
                        slice,
                        div_conditions: div,
                    });
                }
                _ => {}
            }
        }
        self.candidates = cands;
    }

    /// Static instruction mix for Figure 6.
    pub fn static_mix(&self, kernel: &Kernel) -> StaticMix {
        let mut m = StaticMix {
            total: kernel.instrs.len(),
            ..Default::default()
        };
        for (pc, i) in kernel.instrs.iter().enumerate() {
            match i.class() {
                InstrClass::Arithmetic => {
                    let affine = match i {
                        Instr::SetP { .. } => self.pred_decoupleable[pc],
                        _ => self.def_class[pc].is_affine(),
                    };
                    if affine {
                        m.affine_arithmetic += 1;
                    }
                }
                InstrClass::Memory => {
                    let affine = match i {
                        Instr::Ld {
                            addr: AddrMode::Reg(r, _),
                            ..
                        }
                        | Instr::St {
                            addr: AddrMode::Reg(r, _),
                            ..
                        } => self.use_class(pc, *r).is_affine(),
                        _ => false,
                    };
                    if affine {
                        m.affine_memory += 1;
                    }
                }
                InstrClass::Branch => {
                    if let Instr::Bra { pred, .. } = i {
                        let affine = match pred {
                            None => true,
                            Some(PredSrc::Reg(g)) => self.pred_use_decoupleable(pc, g.pred),
                            Some(PredSrc::Deq { .. }) => true,
                        };
                        if affine {
                            m.affine_branch += 1;
                        }
                    }
                }
                InstrClass::Other => {}
            }
        }
        m
    }
}

/// Forward dominators over blocks, as bitsets (`dom[b]` contains `d` iff
/// `d` dominates `b`).
fn compute_dominators(cfg: &Cfg) -> Vec<Vec<u64>> {
    let n = cfg.blocks.len();
    let words = n.div_ceil(64).max(1);
    let mut full = vec![!0u64; words];
    let extra = words * 64 - n;
    if extra > 0 {
        full[words - 1] >>= extra;
    }
    let mut dom = vec![full.clone(); n];
    // Entry dominates only itself.
    dom[0] = vec![0u64; words];
    dom[0][0] |= 1;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut newset = full.clone();
            if cfg.blocks[b].preds.is_empty() {
                newset = vec![0u64; words]; // unreachable
            }
            for &p in &cfg.blocks[b].preds {
                for w in 0..words {
                    newset[w] &= dom[p][w];
                }
            }
            newset[b / 64] |= 1 << (b % 64);
            if newset != dom[b] {
                dom[b] = newset;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{CmpOp, KernelBuilder, Op, Width};

    /// The paper's Figure 4 kernel.
    fn figure4_kernel() -> Kernel {
        simt_ir::asm::parse_kernel(
            r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
        )
        .unwrap()
    }

    #[test]
    fn figure4_classification() {
        let k = figure4_kernel();
        let a = AffineAnalysis::run(&k);
        // tid (r1) is Affine; addrA (r3) is Affine at the load.
        assert_eq!(a.def_class[1], AffClass::Affine);
        assert_eq!(a.use_class(6, 3), AffClass::Affine);
        // i (r5) and stride (r8) are Scalar.
        assert_eq!(a.use_class(13, 5), AffClass::Scalar);
        assert_eq!(a.def_class[10], AffClass::Scalar);
        // Loop predicate is decoupleable (scalar vs scalar).
        assert!(a.pred_decoupleable[13]);
        // Data value (r6, r7) is NonAffine.
        assert_eq!(a.use_class(7, 6), AffClass::NonAffine);
    }

    #[test]
    fn figure4_candidates() {
        let k = figure4_kernel();
        let a = AffineAnalysis::run(&k);
        let kinds: Vec<CandidateKind> = a.candidates.iter().map(|c| c.kind).collect();
        assert!(
            kinds.contains(&CandidateKind::LoadData),
            "{:?}",
            a.candidates
        );
        assert!(kinds.contains(&CandidateKind::StoreAddr));
        assert!(kinds.contains(&CandidateKind::Pred));
        // The loop-carried addrA update is NOT a divergent condition.
        let load = a
            .candidates
            .iter()
            .find(|c| c.kind == CandidateKind::LoadData)
            .unwrap();
        assert_eq!(load.div_conditions, 0, "loop-carried must not count");
        // The load's slice includes the address init and update chain.
        assert!(load.slice.contains(&3)); // add r3, %p0, r2
        assert!(load.slice.contains(&11)); // add r3, r8, r3
    }

    #[test]
    fn figure4_static_mix() {
        let k = figure4_kernel();
        let a = AffineAnalysis::run(&k);
        let m = a.static_mix(&k);
        assert_eq!(m.total, 16);
        // Loads/stores both affine.
        assert_eq!(m.affine_memory, 2);
        assert_eq!(m.affine_branch, 1);
        assert!(m.potential_affine_fraction() > 0.5);
    }

    #[test]
    fn divergent_diamond_counts_one_condition() {
        // Figure 14 right: offset = cond ? 0 : tid*4 via diamond.
        let mut b = KernelBuilder::new("div", 2);
        let tid = b.tid_linear_x();
        let p = b.setp(CmpOp::Lt, Operand::Reg(tid), Operand::Param(1));
        let off = b.reg();
        b.bra_if(p, "then");
        b.alu_into(off, Op::Shl, &[Operand::Reg(tid), Operand::Imm(2)]);
        b.bra("join");
        b.label("then");
        b.alu_into(off, Op::Mov, &[Operand::Imm(0)]);
        b.label("join");
        let addr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let _ = b.ld(simt_ir::Space::Global, addr, 0, Width::W32);
        b.exit();
        let k = b.build();
        let a = AffineAnalysis::run(&k);
        let load = a
            .candidates
            .iter()
            .find(|c| c.kind == CandidateKind::LoadData)
            .expect("divergent load should still be a candidate");
        assert_eq!(load.div_conditions, 1);
    }

    #[test]
    fn data_dependent_branch_taints_region() {
        // if (A[tid] > 0) { store } — the store's control is data-dependent.
        let mut b = KernelBuilder::new("taint", 2);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let v = b.ld(simt_ir::Space::Global, pa, 0, Width::W32);
        let p = b.setp(CmpOp::Le, Operand::Reg(v), Operand::Imm(0));
        b.bra_if(p, "skip");
        let pb = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        b.st(simt_ir::Space::Global, pb, 0, Operand::Reg(v), Width::W32);
        b.label("skip");
        b.exit();
        let k = b.build();
        let a = AffineAnalysis::run(&k);
        // The store (pc 7) is tainted and must not be a candidate.
        assert!(a.tainted[7]);
        assert!(a
            .candidates
            .iter()
            .all(|c| c.kind != CandidateKind::StoreAddr));
        // The load (pc 3) is before the branch and remains a candidate.
        assert!(a
            .candidates
            .iter()
            .any(|c| c.kind == CandidateKind::LoadData && c.pc == 3));
    }

    #[test]
    fn indirect_load_is_not_a_candidate() {
        // B[A[tid]] — classic indirect access (BFS-like), not affine.
        let mut b = KernelBuilder::new("indirect", 2);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let idx = b.ld(simt_ir::Space::Global, pa, 0, Width::W32);
        let ioff = b.alu2(Op::Shl, Operand::Reg(idx), Operand::Imm(2));
        let pb = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(ioff));
        let _ = b.ld(simt_ir::Space::Global, pb, 0, Width::W32);
        b.exit();
        let k = b.build();
        let a = AffineAnalysis::run(&k);
        let load_pcs: Vec<usize> = a
            .candidates
            .iter()
            .filter(|c| c.kind == CandidateKind::LoadData)
            .map(|c| c.pc)
            .collect();
        // Only the first (affine) load qualifies.
        assert_eq!(load_pcs, vec![3]);
    }

    #[test]
    fn mod_address_is_candidate() {
        let mut b = KernelBuilder::new("modk", 1);
        let tid = b.tid_linear_x();
        let m = b.alu2(Op::Rem, Operand::Reg(tid), Operand::Imm(64));
        let off = b.alu2(Op::Shl, Operand::Reg(m), Operand::Imm(2));
        let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let _ = b.ld(simt_ir::Space::Global, pa, 0, Width::W32);
        b.exit();
        let k = b.build();
        let a = AffineAnalysis::run(&k);
        assert_eq!(a.use_class(4, pa), AffClass::AffineMod);
        assert!(a
            .candidates
            .iter()
            .any(|c| c.kind == CandidateKind::LoadData));
    }

    use simt_ir::Operand;
}

//! Diagnostic dump of DAC behaviour on selected benchmarks.
use gpu_workloads::{benchmark, gpu_for, run_design, Design};
use simt_sim::GpuSim;

fn main() {
    for abbr in std::env::args().skip(1) {
        let w = benchmark(&abbr, 1).unwrap();
        let base = run_design(
            &w,
            Design::Baseline,
            &GpuSim::new(gpu_for(Design::Baseline)),
        );
        let dac = run_design(&w, Design::Dac, &GpuSim::new(gpu_for(Design::Dac)));
        let b = &base.report;
        let d = &dac.report;
        println!("== {abbr} ==");
        println!(
            "cycles: base {} dac {} speedup {:.3}",
            b.cycles,
            d.cycles,
            b.cycles as f64 / d.cycles as f64
        );
        println!(
            "warp instrs: base {} dac {} (+affine {})",
            b.stats.warp_instructions, d.stats.warp_instructions, d.stats.affine_instructions
        );
        println!(
            "loads: {} decoupled {} ({:.1}%)",
            d.stats.global_loads,
            d.stats.decoupled_loads,
            100.0 * d.stats.decoupled_load_fraction()
        );
        println!(
            "aeu_records {} peu_records {} enq_full {} deq_empty {} deq_data {}",
            d.stats.aeu_records,
            d.stats.peu_records,
            d.stats.enq_full_stalls,
            d.stats.deq_empty_stalls,
            d.stats.deq_data_stalls
        );
        println!(
            "idle sched: base {} dac {}; affine slots {}",
            b.stats.idle_scheduler_cycles,
            d.stats.idle_scheduler_cycles,
            d.stats.affine_issue_slots
        );
        println!(
            "mem base: L1 {:.2} L2 {:.2} dram {} | mem dac: L1 {:.2} L2 {:.2} dram {} lockstall {}",
            b.mem.l1_hit_rate(),
            b.mem.l2_hit_rate(),
            b.mem.dram_serviced,
            d.mem.l1_hit_rate(),
            d.mem.l2_hit_rate(),
            d.mem.dram_serviced,
            d.mem.lock_budget_stalls
        );
        println!(
            "mshr stalls: base {} dac {}; queue full: base {} dac {}",
            b.mem.mshr_full_stalls,
            d.mem.mshr_full_stalls,
            b.mem.queue_full_stalls,
            d.mem.queue_full_stalls
        );
    }
}

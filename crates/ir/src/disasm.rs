//! A re-parseable disassembler: emits the assembler's own syntax, with
//! labels generated for branch targets, so that
//! `parse_kernel(to_asm(k))` reproduces `k` exactly (round-trip property
//! tested in `tests/roundtrip.rs`).

use crate::instr::{AddrMode, Instr, PredSrc};
use crate::kernel::Kernel;
use std::collections::BTreeMap;

/// Render `kernel` in assembler syntax.
pub fn to_asm(kernel: &Kernel) -> String {
    // Collect branch targets → label names.
    let mut labels: BTreeMap<usize, String> = BTreeMap::new();
    for i in &kernel.instrs {
        if let Instr::Bra { target, .. } = i {
            let n = labels.len();
            labels.entry(*target).or_insert_with(|| format!("L{n}"));
        }
    }

    let mut out = String::new();
    out.push_str(&format!(".kernel {}\n", kernel.name));
    out.push_str(&format!(".params {}\n", kernel.num_params));
    if kernel.shared_bytes > 0 {
        out.push_str(&format!(".shared {}\n", kernel.shared_bytes));
    }
    if kernel.regs_per_thread > kernel.num_regs {
        out.push_str(&format!(".regs {}\n", kernel.regs_per_thread));
    }
    for (pc, i) in kernel.instrs.iter().enumerate() {
        if let Some(l) = labels.get(&pc) {
            out.push_str(&format!("{l}:\n"));
        }
        out.push_str("    ");
        out.push_str(&render(i, &labels));
        out.push('\n');
    }
    // Labels at the end-of-program PC.
    if let Some(l) = labels.get(&kernel.instrs.len()) {
        out.push_str(&format!("{l}:\n    exit;\n"));
    }
    out
}

fn render(i: &Instr, labels: &BTreeMap<usize, String>) -> String {
    match i {
        Instr::Bra { target, pred } => {
            let label = labels
                .get(target)
                .cloned()
                .unwrap_or_else(|| target.to_string());
            match pred {
                None => format!("bra {label};"),
                Some(PredSrc::Reg(g)) => {
                    format!(
                        "@{}p{} bra {label};",
                        if g.negate { "!" } else { "" },
                        g.pred
                    )
                }
                Some(PredSrc::Deq { negate }) => {
                    format!("@{}deq.pred bra {label};", if *negate { "!" } else { "" })
                }
            }
        }
        Instr::Ld {
            dst,
            space,
            addr,
            width,
            guard,
        } => {
            let g = guard.map(|g| format!("{g} ")).unwrap_or_default();
            match addr {
                AddrMode::Reg(r, 0) => format!("{g}ld.{space}.{width} r{dst}, [r{r}];"),
                AddrMode::Reg(r, d) if *d >= 0 => {
                    format!("{g}ld.{space}.{width} r{dst}, [r{r}+{d}];")
                }
                AddrMode::Reg(r, d) => format!("{g}ld.{space}.{width} r{dst}, [r{r}{d}];"),
                AddrMode::DeqData => format!("{g}ld.{space}.{width} r{dst}, deq.data;"),
                AddrMode::DeqAddr => format!("{g}ld.{space}.{width} r{dst}, deq.addr;"),
            }
        }
        Instr::St {
            space,
            addr,
            src,
            width,
            guard,
        } => {
            let g = guard.map(|g| format!("{g} ")).unwrap_or_default();
            match addr {
                AddrMode::Reg(r, 0) => format!("{g}st.{space}.{width} [r{r}], {src};"),
                AddrMode::Reg(r, d) if *d >= 0 => {
                    format!("{g}st.{space}.{width} [r{r}+{d}], {src};")
                }
                AddrMode::Reg(r, d) => format!("{g}st.{space}.{width} [r{r}{d}], {src};"),
                _ => format!("{g}st.{space}.{width} [deq.addr], {src};"),
            }
        }
        // The Display impl already emits assembler syntax for the rest.
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_kernel;

    #[test]
    fn roundtrips_the_paper_kernel() {
        let text = r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#;
        let k = parse_kernel(text).unwrap();
        let k2 = parse_kernel(&to_asm(&k)).unwrap();
        assert_eq!(k.instrs, k2.instrs);
        assert_eq!(k.num_params, k2.num_params);
    }

    #[test]
    fn roundtrips_decoupled_streams() {
        let text = ".kernel d\nL:\n ld.global r0, deq.data;\n add r1, r0, 1;\n st.global [deq.addr], r1;\n @deq.pred bra L;\n exit;";
        let k = parse_kernel(text).unwrap();
        let k2 = parse_kernel(&to_asm(&k)).unwrap();
        assert_eq!(k.instrs, k2.instrs);
    }

    #[test]
    fn roundtrips_guarded_enq_and_negated_sel() {
        // The enq width/space/guard and the sel negate bit were once dropped
        // by Display; parse-back must reproduce the identical instructions.
        let text = ".kernel e\n setp.lt p1, r0, 4;\n @!p1 enq.data.local.b64 r2;\n @p1 enq.addr.b16 r3;\n enq.data r9;\n enq.pred p1;\n sel r4, r2, r3, !p1;\n sel r5, 1, 2, p1;\n exit;";
        let k = parse_kernel(text).unwrap();
        let k2 = parse_kernel(&to_asm(&k)).unwrap();
        assert_eq!(k.instrs, k2.instrs);
    }

    #[test]
    fn negative_displacements_roundtrip() {
        let text = ".kernel n\n ld.global r0, [r1-8];\n st.shared.b16 [r2+6], r0;\n exit;";
        let k = parse_kernel(text).unwrap();
        let k2 = parse_kernel(&to_asm(&k)).unwrap();
        assert_eq!(k.instrs, k2.instrs);
    }
}

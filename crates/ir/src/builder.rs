//! Programmatic kernel construction with labels and forward references.

use crate::instr::{AddrMode, AtomOp, CmpOp, Guard, Instr, Op, PredSrc, QueueKind};
use crate::kernel::Kernel;
use crate::types::{Operand, PredId, RegId, Space, SpecialReg, Width};
use std::collections::HashMap;

/// Builds a [`Kernel`] instruction by instruction.
///
/// Registers and predicates are allocated on demand; branch targets are
/// symbolic labels resolved at [`KernelBuilder::build`] time, so loops with
/// forward exits are easy to express.
///
/// # Example
///
/// ```
/// use simt_ir::{KernelBuilder, CmpOp, Op, Operand};
///
/// let mut b = KernelBuilder::new("count", 1);
/// let i = b.mov(Operand::Imm(0));
/// b.label("loop");
/// b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
/// let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(0));
/// b.bra_if(p, "loop");
/// b.exit();
/// let k = b.build();
/// assert!(k.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: RegId,
    next_pred: PredId,
    num_params: u16,
    shared_bytes: u32,
    regs_per_thread: u16,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
}

impl KernelBuilder {
    /// Start a new kernel with `num_params` parameter slots.
    pub fn new(name: impl Into<String>, num_params: u16) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            num_params,
            shared_bytes: 0,
            regs_per_thread: 0,
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Reserve `bytes` of per-CTA shared memory.
    pub fn shared(&mut self, bytes: u32) -> &mut Self {
        self.shared_bytes = self.shared_bytes.max(bytes);
        self
    }

    /// Declare the per-thread register-file footprint for occupancy
    /// accounting. [`KernelBuilder::build`] raises it to the number of
    /// virtual registers actually allocated, so this only matters when
    /// modelling *extra* register pressure (spills, compiler padding).
    pub fn regs_per_thread(&mut self, regs: u16) -> &mut Self {
        self.regs_per_thread = self.regs_per_thread.max(regs);
        self
    }

    /// Allocate a fresh general-purpose register.
    pub fn reg(&mut self) -> RegId {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Allocate a fresh predicate register.
    pub fn pred(&mut self) -> PredId {
        let p = self.next_pred;
        self.next_pred += 1;
        p
    }

    /// Current instruction index (the PC of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Emit `op` into a fresh destination register.
    pub fn alu(&mut self, op: Op, srcs: &[Operand]) -> RegId {
        let dst = self.reg();
        self.alu_into(dst, op, srcs);
        dst
    }

    /// Emit `op` writing an existing register (for loop-carried updates).
    pub fn alu_into(&mut self, dst: RegId, op: Op, srcs: &[Operand]) -> &mut Self {
        assert_eq!(srcs.len(), op.arity(), "{op}: wrong operand count");
        let mut s = [Operand::Imm(0); 3];
        s[..srcs.len()].copy_from_slice(srcs);
        self.push(Instr::Alu {
            op,
            dst,
            srcs: s,
            guard: None,
        })
    }

    /// Unary ALU convenience.
    pub fn alu1(&mut self, op: Op, a: Operand) -> RegId {
        self.alu(op, &[a])
    }

    /// Binary ALU convenience.
    pub fn alu2(&mut self, op: Op, a: Operand, b: Operand) -> RegId {
        self.alu(op, &[a, b])
    }

    /// Ternary ALU convenience (`mad`).
    pub fn alu3(&mut self, op: Op, a: Operand, b: Operand, c: Operand) -> RegId {
        self.alu(op, &[a, b, c])
    }

    /// Move an operand into a fresh register.
    pub fn mov(&mut self, a: Operand) -> RegId {
        self.alu1(Op::Mov, a)
    }

    /// Integer compare into a fresh predicate.
    pub fn setp(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> PredId {
        let dst = self.pred();
        self.setp_into(dst, cmp, a, b, false);
        dst
    }

    /// Float compare into a fresh predicate.
    pub fn setp_f(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> PredId {
        let dst = self.pred();
        self.setp_into(dst, cmp, a, b, true);
        dst
    }

    /// Compare into an existing predicate register.
    pub fn setp_into(
        &mut self,
        dst: PredId,
        cmp: CmpOp,
        a: Operand,
        b: Operand,
        float: bool,
    ) -> &mut Self {
        self.push(Instr::SetP {
            dst,
            cmp,
            a,
            b,
            float,
            guard: None,
        })
    }

    /// `dst = p ? a : b` into a fresh register.
    pub fn sel(&mut self, p: PredId, a: Operand, b: Operand) -> RegId {
        let dst = self.reg();
        self.push(Instr::Sel {
            dst,
            pred: Guard::pos(p),
            a,
            b,
        });
        dst
    }

    /// Load into a fresh register from `[addr + disp]`.
    pub fn ld(&mut self, space: Space, addr: RegId, disp: i64, width: Width) -> RegId {
        let dst = self.reg();
        self.push(Instr::Ld {
            dst,
            space,
            addr: AddrMode::Reg(addr, disp),
            width,
            guard: None,
        });
        dst
    }

    /// Guarded load into a fresh register.
    pub fn ld_guard(
        &mut self,
        space: Space,
        addr: RegId,
        disp: i64,
        width: Width,
        guard: Guard,
    ) -> RegId {
        let dst = self.reg();
        self.push(Instr::Ld {
            dst,
            space,
            addr: AddrMode::Reg(addr, disp),
            width,
            guard: Some(guard),
        });
        dst
    }

    /// Store `src` to `[addr + disp]`.
    pub fn st(
        &mut self,
        space: Space,
        addr: RegId,
        disp: i64,
        src: Operand,
        width: Width,
    ) -> &mut Self {
        self.push(Instr::St {
            space,
            addr: AddrMode::Reg(addr, disp),
            src,
            width,
            guard: None,
        })
    }

    /// Guarded store.
    pub fn st_guard(
        &mut self,
        space: Space,
        addr: RegId,
        disp: i64,
        src: Operand,
        width: Width,
        guard: Guard,
    ) -> &mut Self {
        self.push(Instr::St {
            space,
            addr: AddrMode::Reg(addr, disp),
            src,
            width,
            guard: Some(guard),
        })
    }

    /// Atomic RMW on global memory; returns the register holding the old value.
    pub fn atom(&mut self, op: AtomOp, addr: RegId, disp: i64, src: Operand) -> RegId {
        let dst = self.reg();
        self.push(Instr::Atom {
            op,
            dst,
            addr: AddrMode::Reg(addr, disp),
            src,
            guard: None,
        });
        dst
    }

    /// CTA barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.push(Instr::Bar)
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instr::Exit)
    }

    /// Bind `name` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.instrs.len());
        assert!(prev.is_none(), "label {name} defined twice");
        self
    }

    fn bra_raw(&mut self, label: &str, pred: Option<PredSrc>) {
        let pc = self.instrs.len();
        self.fixups.push((pc, label.to_string()));
        self.instrs.push(Instr::Bra {
            target: usize::MAX,
            pred,
        });
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: &str) -> &mut Self {
        self.bra_raw(label, None);
        self
    }

    /// Branch to `label` when `p` is true.
    pub fn bra_if(&mut self, p: PredId, label: &str) -> &mut Self {
        self.bra_raw(label, Some(PredSrc::Reg(Guard::pos(p))));
        self
    }

    /// Branch to `label` when `p` is false.
    pub fn bra_ifnot(&mut self, p: PredId, label: &str) -> &mut Self {
        self.bra_raw(label, Some(PredSrc::Reg(Guard::neg(p))));
        self
    }

    /// Enqueue an affine load address (DAC affine stream).
    pub fn enq_data(&mut self, src: RegId, width: Width) -> &mut Self {
        self.push(Instr::Enq {
            kind: QueueKind::Data,
            src: Some(src),
            pred: None,
            width,
            space: Space::Global,
            guard: None,
        })
    }

    /// Enqueue an affine store address (DAC affine stream).
    pub fn enq_addr(&mut self, src: RegId, width: Width) -> &mut Self {
        self.push(Instr::Enq {
            kind: QueueKind::Addr,
            src: Some(src),
            pred: None,
            width,
            space: Space::Global,
            guard: None,
        })
    }

    /// Enqueue an affine predicate (DAC affine stream).
    pub fn enq_pred(&mut self, pred: PredId) -> &mut Self {
        self.push(Instr::Enq {
            kind: QueueKind::Pred,
            src: None,
            pred: Some(pred),
            width: Width::W32,
            space: Space::Global,
            guard: None,
        })
    }

    /// Emit the canonical linear thread id: `ctaid.x * ntid.x + tid.x`.
    pub fn tid_linear_x(&mut self) -> RegId {
        self.alu3(
            Op::Mad,
            Operand::Special(SpecialReg::CtaIdX),
            Operand::Special(SpecialReg::NTidX),
            Operand::Special(SpecialReg::TidX),
        )
    }

    /// Emit a byte offset `tid * width` and add it to a base-pointer param:
    /// returns the register holding `param(base) + tid * elem_bytes`.
    pub fn param_elem_addr(&mut self, param: u16, tid: RegId, elem_bytes: i64) -> RegId {
        self.alu3(
            Op::Mad,
            Operand::Reg(tid),
            Operand::Imm(elem_bytes),
            Operand::Param(param),
        )
    }

    /// Finalize into a [`Kernel`], resolving all label fixups.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never defined.
    pub fn build(mut self) -> Kernel {
        for (pc, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .unwrap_or_else(|| panic!("undefined label {label}"));
            if let Instr::Bra { target: t, .. } = &mut self.instrs[*pc] {
                *t = target;
            }
        }
        Kernel {
            name: self.name,
            instrs: self.instrs,
            num_regs: self.next_reg,
            num_preds: self.next_pred,
            num_params: self.num_params,
            shared_bytes: self.shared_bytes,
            regs_per_thread: self.regs_per_thread.max(self.next_reg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_with_forward_label() {
        let mut b = KernelBuilder::new("k", 1);
        let i = b.mov(Operand::Imm(0));
        let p = b.pred();
        b.label("top");
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        b.setp_into(p, CmpOp::Ge, Operand::Reg(i), Operand::Param(0), false);
        b.bra_if(p, "done");
        b.bra("top");
        b.label("done");
        b.exit();
        let k = b.build();
        k.validate().unwrap();
        // bra_if at pc 3 targets "done" == 5; bra at 4 targets "top" == 1.
        match k.instrs[3] {
            Instr::Bra { target, .. } => assert_eq!(target, 5),
            _ => panic!(),
        }
        match k.instrs[4] {
            Instr::Bra { target, .. } => assert_eq!(target, 1),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut b = KernelBuilder::new("k", 0);
        b.bra("nowhere");
        b.exit();
        b.build();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut b = KernelBuilder::new("k", 0);
        b.label("a");
        b.label("a");
    }

    #[test]
    fn register_counts_tracked() {
        let mut b = KernelBuilder::new("k", 0);
        let t = b.tid_linear_x();
        let _ = b.alu2(Op::Add, Operand::Reg(t), Operand::Imm(1));
        b.exit();
        let k = b.build();
        assert_eq!(k.num_regs, 2);
        assert_eq!(k.num_preds, 0);
    }
}

//! Sweep manifests: the durable record that makes sweeps resumable.
//!
//! Submitting a grid writes one `dac-sweep/v1` JSON file under
//! `<results>/sweeps/<sweep-id>.json` — the canonical request plus the
//! point list (cache key + hash + label per point). Manifests are
//! write-once and atomic (temp file + rename), so a daemon killed
//! mid-write never leaves a torn manifest.
//!
//! **Completion state is deliberately NOT stored here.** A point is done
//! iff its result is in the content-addressed cache, so the cache itself
//! is the progress record: a restarted daemon re-reads each manifest,
//! re-enqueues every point, and the finished ones resolve instantly as
//! cache hits — no re-execution, no bookkeeping to keep consistent.

use crate::grid::GridRequest;
use simt_harness::{json, Job};
use std::fs;
use std::path::{Path, PathBuf};

/// Schema tag on every manifest; loaders reject anything else.
pub const SCHEMA: &str = "dac-sweep/v1";

/// A sweep's durable description.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Content-addressed sweep id (`sweep-<16 hex>`).
    pub id: String,
    /// The grid that was submitted.
    pub request: GridRequest,
}

/// The manifest directory under a results root.
pub fn dir(results: &Path) -> PathBuf {
    results.join("sweeps")
}

fn path(results: &Path, id: &str) -> PathBuf {
    dir(results).join(format!("{id}.json"))
}

/// Serialize a manifest (the request plus the resolved point list — the
/// points are derivable from the request, but listing them makes manifests
/// self-describing for humans and `GET /sweeps/:id` cheap for machines).
pub fn to_json(id: &str, request: &GridRequest, jobs: &[Job]) -> json::Value {
    let points = jobs
        .iter()
        .map(|job| {
            json::Value::Obj(vec![
                ("label".into(), json::Value::Str(job.label())),
                (
                    "run".into(),
                    json::Value::Str(format!("{:016x}", job.cache_hash())),
                ),
                ("key".into(), json::Value::Str(job.cache_key())),
            ])
        })
        .collect();
    json::Value::Obj(vec![
        ("schema".into(), json::Value::Str(SCHEMA.into())),
        ("id".into(), json::Value::Str(id.into())),
        ("request".into(), request.to_json()),
        ("points".into(), json::Value::Arr(points)),
    ])
}

/// Write the manifest for a newly submitted sweep, atomically. An existing
/// manifest is left untouched (identical content by construction: the id
/// is a hash of the points).
pub fn store(results: &Path, id: &str, request: &GridRequest, jobs: &[Job]) -> std::io::Result<()> {
    let path = path(results, id);
    if path.exists() {
        return Ok(());
    }
    fs::create_dir_all(dir(results))?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, to_json(id, request, jobs).to_json().as_bytes())?;
    fs::rename(&tmp, &path)
}

/// Load every manifest under a results root, oldest-id first (stable
/// across restarts). Unreadable or unparseable manifests are reported and
/// skipped — one bad file must not block the daemon from serving the rest.
pub fn load_all(results: &Path) -> Vec<Manifest> {
    let dir = dir(results);
    let Ok(entries) = fs::read_dir(&dir) else {
        return Vec::new(); // no sweeps yet
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut manifests = Vec::new();
    for p in paths {
        match load_one(&p) {
            Ok(m) => manifests.push(m),
            Err(e) => simt_obs::warn!("serve.manifest", "skipping manifest";
                path = p.display().to_string(), error = e),
        }
    }
    manifests
}

fn load_one(path: &Path) -> Result<Manifest, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = json::parse(&text)?;
    if v.get("schema").and_then(json::Value::as_str) != Some(SCHEMA) {
        return Err(format!(
            "unknown manifest schema {:?}",
            v.get("schema").and_then(json::Value::as_str)
        ));
    }
    let id = v
        .get("id")
        .and_then(json::Value::as_str)
        .ok_or("missing field \"id\"")?
        .to_string();
    let request = GridRequest::from_json(v.get("request").ok_or("missing field \"request\"")?)?;
    Ok(Manifest { id, request })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip_and_bad_files_skipped() {
        let results =
            std::env::temp_dir().join(format!("dac-manifest-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&results);
        let req = GridRequest::from_json(
            &json::parse(
                r#"{"benches": ["LIB", "MQ"], "designs": ["baseline", "dac"],
                    "overrides": {"num_sms": 2, "max_warps_per_sm": 16}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let jobs = req.jobs();
        let id = GridRequest::sweep_id(&jobs);
        store(&results, &id, &req, &jobs).unwrap();
        // Storing again is a no-op, not an error.
        store(&results, &id, &req, &jobs).unwrap();
        // A corrupt sibling is skipped with a warning, not fatal.
        fs::write(dir(&results).join("zz-bad.json"), b"{ nope").unwrap();

        let loaded = load_all(&results);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].id, id);
        let jobs_back = loaded[0].request.jobs();
        assert_eq!(GridRequest::sweep_id(&jobs_back), id);
        assert_eq!(jobs_back.len(), jobs.len());

        // The manifest lists one point per job with its run hash.
        let text = fs::read_to_string(path(&results, &id)).unwrap();
        let v = json::parse(&text).unwrap();
        let points = v.get("points").and_then(json::Value::as_arr).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(
            points[0].get("run").and_then(json::Value::as_str).unwrap(),
            format!("{:016x}", jobs[0].cache_hash())
        );
        let _ = fs::remove_dir_all(&results);
    }
}

//! Disassembly round-trips through the assembler for builder-generated
//! kernels with loops, guards, and memory ops. The former proptest search
//! space is small, so it is enumerated exhaustively (no external deps —
//! the build environment is offline).

use simt_ir::disasm::to_asm;
use simt_ir::{asm, CmpOp, KernelBuilder, Op, Operand, Space, Width};

fn roundtrip(nloops: usize, nmem: usize, shift: i64, disp: i64) {
    let mut b = KernelBuilder::new("rt", 2);
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(shift));
    let addr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
    for _ in 0..nmem {
        let v = b.ld(Space::Global, addr, disp, Width::W32);
        b.st(Space::Global, addr, disp + 4, Operand::Reg(v), Width::W32);
    }
    for k in 0..nloops {
        let i = b.mov(Operand::Imm(0));
        b.label(format!("l{k}"));
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(1));
        b.bra_if(p, &format!("l{k}"));
    }
    b.exit();
    let k = b.build();
    let text = to_asm(&k);
    let k2 = asm::parse_kernel(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
    assert_eq!(&k.instrs, &k2.instrs, "{text}");
    assert_eq!(k.num_preds, k2.num_preds);
}

#[test]
fn builder_kernels_roundtrip() {
    for nloops in 0..3 {
        for nmem in 0..4 {
            for shift in 0..4 {
                for disp in [-16i64, -8, -1, 0, 1, 4, 17, 32, 63] {
                    roundtrip(nloops, nmem, shift, disp);
                }
            }
        }
    }
}

//! Property-based tests on divergent affine values (§4.6).

use affine::value::DivergentVal;
use affine::{AffineTuple, AffineVal};
use proptest::prelude::*;

fn tup(base: i64, off: i64) -> AffineTuple {
    AffineTuple {
        base,
        off: [off, 0, 0],
        mod_ext: None,
    }
}

proptest! {
    /// Merging a sequence of masked writes gives each lane the value of the
    /// last write whose mask covered it (register semantics under
    /// divergence).
    #[test]
    fn merge_masked_is_last_writer_wins(
        writes in prop::collection::vec((any::<u32>(), -100i64..100, -8i64..8), 1..4),
    ) {
        let nw = 2usize;
        let mut val: Option<AffineVal> = None;
        // Reference: per-lane last writer.
        let mut last: Vec<Option<(i64, i64)>> = vec![None; nw * 32];
        let mut ok = true;
        for (mask, base, off) in &writes {
            let masks = [*mask, mask.rotate_left(7)];
            match AffineVal::merge_masked(val.as_ref(), tup(*base, *off), &masks, nw) {
                Some(v) => {
                    val = Some(v);
                    for w in 0..nw {
                        for lane in 0..32 {
                            if masks[w] & (1 << lane) != 0 {
                                last[w * 32 + lane] = Some((*base, *off));
                            }
                        }
                    }
                }
                None => {
                    // Exceeded the divergent-tuple budget; the compiler
                    // prevents this, stop the scenario here.
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Some(v) = val {
                for w in 0..nw {
                    for lane in 0..32 {
                        if let Some((base, off)) = last[w * 32 + lane] {
                            let tid = (w * 32 + lane) as u32;
                            let got = v.eval(w, lane, (tid, 0, 0));
                            let expect = tup(base, off).eval((tid, 0, 0));
                            prop_assert_eq!(got, expect, "warp {} lane {}", w, lane);
                        }
                    }
                }
            }
        }
    }

    /// A divergent value never carries more than four tuples, and every
    /// selector points inside the tuple vector.
    #[test]
    fn divergent_invariants(
        writes in prop::collection::vec((any::<u32>(), -4i64..4, -2i64..2), 1..6),
    ) {
        let mut val: Option<AffineVal> = None;
        for (mask, base, off) in &writes {
            if let Some(v) =
                AffineVal::merge_masked(val.as_ref(), tup(*base, *off), &[*mask], 1)
            {
                val = Some(v);
            }
        }
        if let Some(AffineVal::Divergent(DivergentVal { tuples, select })) = val {
            prop_assert!(tuples.len() <= affine::value::MAX_DIVERGENT_TUPLES);
            prop_assert!(tuples.len() >= 2, "single-tuple value must collapse");
            for row in &select {
                for &s in row.iter() {
                    prop_assert!((s as usize) < tuples.len());
                }
            }
        }
    }
}

//! Aggregated memory-system statistics.

/// Counters gathered from every level of the hierarchy.
///
/// All counts are *events*, suitable both for reports (hit rates, Figure 20
/// prefetch coverage) and as inputs to the energy model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 demand hits (all SMs).
    pub l1_hits: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// Hits in the MTA prefetch buffer.
    pub pbuf_hits: u64,
    /// Prefetch-buffer lines evicted without ever being hit.
    pub pbuf_unused_evictions: u64,
    /// Prefetch-buffer fills.
    pub pbuf_fills: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
    /// DRAM requests serviced (reads + writes).
    pub dram_serviced: u64,
    /// Stall events due to a full MSHR table.
    pub mshr_full_stalls: u64,
    /// Stall events due to full partition/DRAM queues.
    pub queue_full_stalls: u64,
    /// Stall events due to the DAC lock budget (`ways - 1` per set).
    pub lock_budget_stalls: u64,
    /// Write-backs of dirty L2 lines.
    pub writebacks: u64,
    /// Atomic operations processed.
    pub atomics: u64,
    /// Prefetch requests dropped because the line was already resident or
    /// in flight.
    pub redundant_prefetches: u64,
    /// Demand misses that merged with an in-flight prefetch (partial
    /// latency hiding — counts toward prefetcher coverage).
    pub prefetch_merged: u64,
    /// Total load requests accepted.
    pub loads: u64,
    /// Total store requests accepted.
    pub stores: u64,
}

/// Generates the by-name field table used by the experiment harness to
/// serialize and re-hydrate counter structs without an external serde.
/// (Duplicated in `simt-sim` for `SimStats`; the two crates share no
/// utility crate to host it.)
macro_rules! stat_fields {
    ($($field:ident),* $(,)?) => {
        /// All counters as `(name, value)` pairs, in declaration order.
        /// The harness serializes these into JSONL artifacts and cache
        /// entries; names are part of the artifact schema.
        pub fn fields(&self) -> Vec<(&'static str, u64)> {
            vec![$((stringify!($field), self.$field)),*]
        }

        /// Set one counter by its serialized name. Returns `false` for an
        /// unknown name so loaders can reject stale cache entries.
        #[must_use]
        pub fn set_field(&mut self, name: &str, value: u64) -> bool {
            match name {
                $(stringify!($field) => self.$field = value,)*
                _ => return false,
            }
            true
        }
    };
}

impl MemStats {
    stat_fields!(
        l1_hits,
        l1_misses,
        pbuf_hits,
        pbuf_unused_evictions,
        pbuf_fills,
        l2_hits,
        l2_misses,
        dram_row_hits,
        dram_row_misses,
        dram_serviced,
        mshr_full_stalls,
        queue_full_stalls,
        lock_budget_stalls,
        writebacks,
        atomics,
        redundant_prefetches,
        prefetch_merged,
        loads,
        stores,
    );

    /// L1 hit rate over demand accesses, in [0, 1].
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 hit rate, in [0, 1].
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// DRAM row-buffer hit rate, in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.dram_row_hits + self.dram_row_misses;
        if total == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = MemStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = MemStats {
            l1_hits: 3,
            l1_misses: 1,
            ..Default::default()
        };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}

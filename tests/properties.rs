//! Randomized tests (deterministic, std-only) on the reproduction's core
//! invariants. A seeded SplitMix64 stream replaces proptest so the suite
//! runs in the offline build environment with reproducible cases.

use dac_gpu::affine::tuple::tuple_op;
use dac_gpu::affine::{decouple, AffineAnalysis, AffineTuple};
use dac_gpu::dac::{Dac, DacConfig};
use dac_gpu::ir::{
    asm, eval, CmpOp, KernelBuilder, LaunchConfig, Op, Operand, Program, Space, Width,
};
use dac_gpu::mem::SparseMemory;
use dac_gpu::sim::{GpuConfig, GpuSim};
use dac_gpu::workloads::kernels::SplitMix64;

// ---------- affine tuple algebra vs. per-thread scalar evaluation ----------

/// A random affine expression: leaves are tid dimensions or immediates;
/// inner nodes are the affine-supported ops.
#[derive(Debug, Clone)]
enum Expr {
    Tid(usize),
    Imm(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    MulScalar(Box<Expr>, i64),
    Shl(Box<Expr>, i64),
    Rem(Box<Expr>, i64),
}

impl Expr {
    /// Per-thread ground truth via the shared functional ALU semantics.
    fn eval_thread(&self, t: (u32, u32, u32)) -> u64 {
        match self {
            Expr::Tid(d) => [t.0, t.1, t.2][*d] as u64,
            Expr::Imm(i) => *i as u64,
            Expr::Add(a, b) => eval::eval(Op::Add, a.eval_thread(t), b.eval_thread(t), 0),
            Expr::Sub(a, b) => eval::eval(Op::Sub, a.eval_thread(t), b.eval_thread(t), 0),
            Expr::MulScalar(a, s) => eval::eval(Op::Mul, a.eval_thread(t), *s as u64, 0),
            Expr::Shl(a, s) => eval::eval(Op::Shl, a.eval_thread(t), *s as u64, 0),
            Expr::Rem(a, s) => eval::eval(Op::Rem, a.eval_thread(t), *s as u64, 0),
        }
    }

    /// Tuple-algebra evaluation; `None` when a combination is outside the
    /// affine domain (e.g. rem of a mod-tuple).
    fn eval_tuple(&self) -> Option<AffineTuple> {
        match self {
            Expr::Tid(d) => Some(AffineTuple::tid(*d)),
            Expr::Imm(i) => Some(AffineTuple::scalar(*i as u64)),
            Expr::Add(a, b) => tuple_op(Op::Add, &[a.eval_tuple()?, b.eval_tuple()?]),
            Expr::Sub(a, b) => tuple_op(Op::Sub, &[a.eval_tuple()?, b.eval_tuple()?]),
            Expr::MulScalar(a, s) => {
                tuple_op(Op::Mul, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)])
            }
            Expr::Shl(a, s) => {
                tuple_op(Op::Shl, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)])
            }
            Expr::Rem(a, s) => {
                tuple_op(Op::Rem, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)])
            }
        }
    }
}

/// A random expression tree of the given depth.
fn gen_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            Expr::Tid(rng.below(3) as usize)
        } else {
            Expr::Imm(rng.below(2000) as i64 - 1000)
        };
    }
    let a = Box::new(gen_expr(rng, depth - 1));
    match rng.below(5) {
        0 => Expr::Add(a, Box::new(gen_expr(rng, depth - 1))),
        1 => Expr::Sub(a, Box::new(gen_expr(rng, depth - 1))),
        2 => Expr::MulScalar(a, rng.below(128) as i64 - 64),
        3 => Expr::Shl(a, rng.below(8) as i64),
        _ => Expr::Rem(a, 1 + rng.below(511) as i64),
    }
}

/// The headline invariant: whenever the affine algebra can represent an
/// expression, evaluating the tuple per thread equals the scalar per-thread
/// computation, bit for bit. (Decoupling is an optimization, never an
/// approximation.)
#[test]
fn tuple_algebra_matches_per_thread_eval() {
    let mut rng = SplitMix64::new(0xA1_6EB2A);
    for _ in 0..2048 {
        let e = gen_expr(&mut rng, 4);
        if let Some(t) = e.eval_tuple() {
            for &(x, y, z) in &[
                (0u32, 0u32, 0u32),
                (1, 0, 0),
                (31, 0, 0),
                (5, 3, 1),
                (127, 7, 2),
            ] {
                let got = t.eval((x, y, z));
                let expect = e.eval_thread((x, y, z));
                assert_eq!(got, expect, "thread ({x}, {y}, {z}) of {e:?}");
            }
        }
    }
}

/// Scalar subsumption: any op over uniform inputs stays uniform and matches
/// the functional ALU exactly.
#[test]
fn scalar_subsumption_matches_alu() {
    const OPS: [Op; 12] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Shr,
        Op::Min,
        Op::Max,
        Op::Div,
        Op::FAdd,
        Op::FMul,
    ];
    let mut rng = SplitMix64::new(0x5CA1A6);
    for i in 0..2048 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let op = OPS[i % OPS.len()];
        let r = tuple_op(op, &[AffineTuple::scalar(a), AffineTuple::scalar(b)])
            .expect("scalar inputs always evaluate");
        assert_eq!(
            r.as_scalar().unwrap(),
            eval::eval(op, a, b, 0),
            "{op:?}({a}, {b})"
        );
    }
}

// ---------- decoupling preserves semantics on random streaming kernels ----------

/// Random strided-loop kernels: the decoupled program writes exactly the
/// bytes the original wrote.
#[test]
fn decoupling_preserves_streaming_semantics() {
    let mut rng = SplitMix64::new(0xDECC_0091);
    for _ in 0..6 {
        let iters = 1 + rng.below(4) as u64;
        let stride_elems = 1 + rng.below(599) as u64;
        let addend = rng.below(1000);
        let ctas = 1 + rng.below(3);

        let mut b = KernelBuilder::new("prop", 4);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let a0 = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let o0 = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        let step = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
        let i = b.mov(Operand::Imm(0));
        b.label("loop");
        let v = b.ld(Space::Global, a0, 0, Width::W32);
        let r = b.alu2(Op::Add, Operand::Reg(v), Operand::Imm(addend as i64));
        b.st(Space::Global, o0, 0, Operand::Reg(r), Width::W32);
        b.alu_into(a0, Op::Add, &[Operand::Reg(a0), Operand::Reg(step)]);
        b.alu_into(o0, Op::Add, &[Operand::Reg(o0), Operand::Reg(step)]);
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
        b.bra_if(p, "loop");
        b.exit();
        let kernel = b.build();
        let launch =
            LaunchConfig::linear(ctas, 64, vec![0x10_0000, 0x200_0000, iters, stride_elems]);
        let span = (stride_elems * iters) as usize + 64 * ctas as usize;
        let input: Vec<u32> = (0..span as u32).map(|i| i ^ 0xA5A5).collect();

        let gpu = GpuSim::new(GpuConfig::test_small());
        let program = Program::new(kernel.clone(), launch.clone()).unwrap();
        let mut m1 = SparseMemory::new();
        m1.write_u32_slice(0x10_0000, &input);
        gpu.run(&program, &mut m1);

        let analysis = AffineAnalysis::run(&kernel);
        let dk = decouple(&kernel, &analysis);
        assert!(dk.any_decoupled);
        let dprog = Program::new(dk.non_affine.clone(), launch).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut m2 = SparseMemory::new();
        m2.write_u32_slice(0x10_0000, &input);
        gpu.run_with(&dprog, &mut m2, &mut dac);

        assert_eq!(
            m1.read_u32_vec(0x200_0000, span),
            m2.read_u32_vec(0x200_0000, span),
            "iters={iters} stride={stride_elems} addend={addend} ctas={ctas}"
        );
    }
}

// ---------- builder output always validates ----------

/// The builder can only produce kernels that validate, for a simple
/// ALU/branch subset, and CFG construction succeeds on all of them.
#[test]
fn builder_kernels_always_validate() {
    let mut rng = SplitMix64::new(0xBD_1DE2);
    for _ in 0..64 {
        let nops = 1 + rng.below(39) as usize;
        let nloops = rng.below(3) as usize;
        let mut b = KernelBuilder::new("gen", 1);
        let mut last = b.mov(Operand::Imm(1));
        for k in 0..nloops {
            let i = b.mov(Operand::Imm(0));
            b.label(format!("l{k}"));
            last = b.alu2(Op::Add, Operand::Reg(last), Operand::Reg(i));
            b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
            let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(3));
            b.bra_if(p, &format!("l{k}"));
        }
        for _ in 0..nops {
            last = b.alu2(Op::Xor, Operand::Reg(last), Operand::Imm(3));
        }
        b.exit();
        let k = b.build();
        assert!(k.validate().is_ok());
        // CFG + reconvergence analysis must succeed on anything valid.
        let cfg = dac_gpu::ir::Cfg::build(&k);
        assert!(!cfg.is_empty());
    }
}

// ---------- the assembler rejects garbage without panicking ----------

#[test]
fn assembler_never_panics() {
    let mut rng = SplitMix64::new(0xA53B_1E55);
    for _ in 0..2048 {
        let len = rng.below(200) as usize;
        let s: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline, as the proptest regex had.
                let c = rng.below(96);
                if c == 95 {
                    '\n'
                } else {
                    (b' ' + c as u8) as char
                }
            })
            .collect();
        let _ = asm::parse_kernel(&s);
    }
    // Directed garbage the fuzz loop may miss.
    for s in [
        "ld.global",
        ".kernel",
        "bra l999\nexit",
        "r1 = add r2,",
        "\u{0}",
    ] {
        let _ = asm::parse_kernel(s);
    }
}

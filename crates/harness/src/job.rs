//! The job abstraction: one cycle-level simulation of `workload × design ×
//! configuration overrides`, plus everything needed to key it in the result
//! cache and serialize it into artifacts.

use crate::cache::fnv1a64;
use dac_core::DacConfig;
use gpu_workloads::{
    gpu_for, run_dac_traced, run_design_traced, run_scenario_design_traced, Design, Scenario,
    Workload,
};
use simt_sim::{GpuConfig, GpuSim, KernelReport, PlacementPolicy, SimReport};
use simt_trace::{NullTracer, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Version tag folded into every cache key. Bump whenever simulator
/// behaviour changes in a way that invalidates cached results (the
/// golden-stats test catches unintended shifts). v5: MTA prefetches pop
/// into a one-entry port latch before the fabric admission attempt, so
/// enqueue decisions no longer depend on admission timing (required by
/// the deterministic intra-run parallel schedule; shifts MTA cycle
/// counts slightly).
pub const CACHE_VERSION: &str = "dac-cache-v5";

/// A point in the design space: one of the paper's four hardware designs,
/// or the perfect-memory machine used for the §5.1.2 compute/memory
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Baseline / CAE / MTA / DAC.
    Hw(Design),
    /// Baseline cores with a zero-latency, infinite-bandwidth memory.
    PerfectMem,
}

impl DesignPoint {
    /// The four hardware designs, in [`Design::ALL`] order.
    pub const HW_ALL: [DesignPoint; 4] = [
        DesignPoint::Hw(Design::Baseline),
        DesignPoint::Hw(Design::Cae),
        DesignPoint::Hw(Design::Mta),
        DesignPoint::Hw(Design::Dac),
    ];

    /// Stable name used in cache keys, artifacts, and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DesignPoint::Hw(d) => d.name(),
            DesignPoint::PerfectMem => "perfect",
        }
    }

    /// Inverse of [`DesignPoint::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<DesignPoint> {
        let s = s.to_ascii_lowercase();
        for p in Self::HW_ALL {
            if p.name() == s {
                return Some(p);
            }
        }
        (s == "perfect").then_some(DesignPoint::PerfectMem)
    }
}

/// Configuration overrides applied on top of the paper's defaults. `None`
/// means "leave the paper value"; only the knobs relevant to a job's design
/// enter its cache key, so e.g. a DAC queue-size sweep does not re-run the
/// baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Overrides {
    /// Affine Tuple Queue entries per SM (DAC only; paper: 24).
    pub atq_entries: Option<usize>,
    /// Per-Warp Address Queue entries per SM (DAC only; paper: 192).
    pub pwaq_total: Option<usize>,
    /// Per-Warp Predicate Queue entries per SM (DAC only; paper: 192).
    pub pwpq_total: Option<usize>,
    /// L1 line locking (DAC only; paper: on).
    pub lock_lines: Option<bool>,
    /// Divergent affine tuples, §4.6 (DAC only; paper: on).
    pub divergent_tuples: Option<bool>,
    /// Number of SMs (all designs; paper: 15).
    pub num_sms: Option<usize>,
    /// Resident warps per SM (all designs; paper: 48).
    pub max_warps_per_sm: Option<usize>,
    /// Disable idle-cycle fast-forward (`--no-fast-forward`). Purely a
    /// simulator-speed knob: results are byte-identical either way (the
    /// determinism test pins this), so it is deliberately *excluded* from
    /// [`Overrides::relevant`] — cache entries and artifacts are shared.
    pub no_fast_forward: bool,
    /// Intra-run worker threads (`--threads N`): shard SMs and L2
    /// partitions within one simulation. Like `no_fast_forward` this is
    /// purely a simulator-speed knob — results are byte-identical for any
    /// value (the determinism tests pin this) — so it is deliberately
    /// *excluded* from [`Overrides::relevant`]: cache entries and
    /// artifacts are shared across thread counts.
    pub threads: Option<usize>,
    /// Multi-kernel scenario selected with `--set streams=NAME`. Not a
    /// per-job knob: the CLIs consume it to build scenario jobs (the
    /// scenario name enters the cache key through the job payload, so it
    /// is excluded from [`Overrides::relevant`]).
    pub streams: Option<String>,
    /// CTA placement policy for scenario jobs (`--set cta_policy=greedy`
    /// or `rr`). Single-kernel runs always place greedily, so like
    /// `streams` this keys through the scenario section of the cache key
    /// rather than [`Overrides::relevant`].
    pub cta_policy: Option<PlacementPolicy>,
}

impl Overrides {
    /// True when every knob is at its paper default.
    pub fn is_default(&self) -> bool {
        *self == Overrides::default()
    }

    /// Apply the GPU-wide knobs to a core configuration.
    pub fn apply_gpu(&self, mut cfg: GpuConfig) -> GpuConfig {
        if let Some(n) = self.num_sms {
            cfg.num_sms = n;
        }
        if let Some(n) = self.max_warps_per_sm {
            cfg.max_warps_per_sm = n;
        }
        cfg.fast_forward = !self.no_fast_forward;
        if let Some(t) = self.threads {
            cfg.threads = t;
        }
        cfg
    }

    /// Apply the DAC knobs to a DAC hardware configuration.
    pub fn apply_dac(&self, mut cfg: DacConfig) -> DacConfig {
        if let Some(n) = self.atq_entries {
            cfg.atq_entries = n;
        }
        if let Some(n) = self.pwaq_total {
            cfg.pwaq_total = n;
        }
        if let Some(n) = self.pwpq_total {
            cfg.pwpq_total = n;
        }
        if let Some(b) = self.lock_lines {
            cfg.lock_lines = b;
        }
        if let Some(b) = self.divergent_tuples {
            cfg.divergent_tuples = b;
        }
        cfg
    }

    /// Set a knob from a CLI-style `key=value` pair.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num(key: &str, value: &str) -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|_| format!("--set {key}: expected a number, got {value:?}"))
        }
        fn flag(key: &str, value: &str) -> Result<bool, String> {
            match value {
                "true" | "on" | "1" => Ok(true),
                "false" | "off" | "0" => Ok(false),
                _ => Err(format!("--set {key}: expected true/false, got {value:?}")),
            }
        }
        match key {
            "atq_entries" => self.atq_entries = Some(num(key, value)?),
            "pwaq_total" => self.pwaq_total = Some(num(key, value)?),
            "pwpq_total" => self.pwpq_total = Some(num(key, value)?),
            "lock_lines" => self.lock_lines = Some(flag(key, value)?),
            "divergent_tuples" => self.divergent_tuples = Some(flag(key, value)?),
            "num_sms" => self.num_sms = Some(num(key, value)?),
            "max_warps_per_sm" => self.max_warps_per_sm = Some(num(key, value)?),
            "streams" => {
                if gpu_workloads::scenario(value, 1).is_none() {
                    return Err(format!(
                        "--set streams: unknown scenario {value:?} (expected one of: {})",
                        gpu_workloads::ALL_SCENARIOS.join(", ")
                    ));
                }
                self.streams = Some(value.to_ascii_lowercase());
            }
            "cta_policy" => {
                self.cta_policy = Some(PlacementPolicy::parse(value).ok_or_else(|| {
                    format!("--set cta_policy: expected greedy or rr, got {value:?}")
                })?);
            }
            _ => {
                return Err(format!(
                    "unknown config knob {key:?} (expected one of: atq_entries, pwaq_total, \
                     pwpq_total, lock_lines, divergent_tuples, num_sms, max_warps_per_sm, \
                     streams, cta_policy)"
                ))
            }
        }
        Ok(())
    }

    /// The knobs that affect a run at `point`, as stable `key=value` pairs
    /// for cache keys and artifacts. DAC-only knobs are dropped for other
    /// designs so they share cache entries across a DAC ablation sweep.
    pub fn relevant(&self, point: DesignPoint) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        if point == DesignPoint::Hw(Design::Dac) {
            if let Some(n) = self.atq_entries {
                out.push(("atq_entries", n.to_string()));
            }
            if let Some(n) = self.pwaq_total {
                out.push(("pwaq_total", n.to_string()));
            }
            if let Some(n) = self.pwpq_total {
                out.push(("pwpq_total", n.to_string()));
            }
            if let Some(b) = self.lock_lines {
                out.push(("lock_lines", b.to_string()));
            }
            if let Some(b) = self.divergent_tuples {
                out.push(("divergent_tuples", b.to_string()));
            }
        }
        if let Some(n) = self.num_sms {
            out.push(("num_sms", n.to_string()));
        }
        if let Some(n) = self.max_warps_per_sm {
            out.push(("max_warps_per_sm", n.to_string()));
        }
        out
    }
}

/// What a job simulates: one of the 29 single-kernel benchmarks, or a
/// multi-kernel stream scenario dispatched by the command processor.
#[derive(Clone)]
pub enum Payload {
    /// A single-kernel benchmark (shared across jobs; each run clones the
    /// memory image).
    Bench(Arc<Workload>),
    /// A multi-kernel stream scenario.
    Scenario(Arc<Scenario>),
}

/// One schedulable simulation.
#[derive(Clone)]
pub struct Job {
    /// What to simulate.
    pub payload: Payload,
    /// The scale the payload was built at — part of the cache key, since
    /// both registries parameterize inputs by scale.
    pub scale: u32,
    /// Which design to run.
    pub point: DesignPoint,
    /// Configuration overrides.
    pub overrides: Overrides,
}

impl Job {
    /// A benchmark job at paper-default configuration.
    pub fn new(workload: Arc<Workload>, scale: u32, point: DesignPoint) -> Self {
        Job {
            payload: Payload::Bench(workload),
            scale,
            point,
            overrides: Overrides::default(),
        }
    }

    /// A multi-kernel scenario job at paper-default configuration.
    pub fn for_scenario(scenario: Arc<Scenario>, scale: u32, point: DesignPoint) -> Self {
        Job {
            payload: Payload::Scenario(scenario),
            scale,
            point,
            overrides: Overrides::default(),
        }
    }

    /// The benchmark workload, when this is a benchmark job.
    pub fn workload(&self) -> Option<&Arc<Workload>> {
        match &self.payload {
            Payload::Bench(w) => Some(w),
            Payload::Scenario(_) => None,
        }
    }

    /// The scenario, when this is a scenario job.
    pub fn scenario(&self) -> Option<&Arc<Scenario>> {
        match &self.payload {
            Payload::Bench(_) => None,
            Payload::Scenario(sc) => Some(sc),
        }
    }

    /// Stable short name keying the payload: the benchmark abbreviation
    /// or the scenario name.
    pub fn bench(&self) -> &str {
        match &self.payload {
            Payload::Bench(w) => w.abbr,
            Payload::Scenario(sc) => sc.name,
        }
    }

    /// Human-readable payload name for artifacts.
    pub fn display_name(&self) -> &str {
        match &self.payload {
            Payload::Bench(w) => w.name,
            Payload::Scenario(sc) => sc.description,
        }
    }

    /// Suite tag: the Table 2 suite letter, or `S` for scenarios.
    pub fn suite_tag(&self) -> char {
        match &self.payload {
            Payload::Bench(w) => w.suite.tag(),
            Payload::Scenario(_) => 'S',
        }
    }

    /// The CTA placement policy this job runs under (scenario jobs only;
    /// single-kernel dispatch is always greedy).
    pub fn policy(&self) -> PlacementPolicy {
        self.overrides.cta_policy.unwrap_or_default()
    }

    /// The canonical cache key: every input that determines the result.
    /// Hash this (the cache does) rather than parsing it.
    pub fn cache_key(&self) -> String {
        let mut key = match &self.payload {
            Payload::Bench(w) => format!(
                "{CACHE_VERSION}|bench={}|scale={}|design={}",
                w.abbr,
                self.scale,
                self.point.name()
            ),
            Payload::Scenario(sc) => format!(
                "{CACHE_VERSION}|scenario={}|cta_policy={}|scale={}|design={}",
                sc.name,
                self.policy().name(),
                self.scale,
                self.point.name()
            ),
        };
        for (k, v) in self.overrides.relevant(self.point) {
            key.push_str(&format!("|{k}={v}"));
        }
        key
    }

    /// The FNV-1a hash of the canonical cache key — the stable short id a
    /// result is addressed by on disk (`results/cache/<hash>.json`) and
    /// over the sweep-service API (`GET /runs/<hash>`).
    pub fn cache_hash(&self) -> u64 {
        fnv1a64(self.cache_key().as_bytes())
    }

    /// Short human label for progress lines.
    pub fn label(&self) -> String {
        format!("{}/{}", self.bench(), self.point.name())
    }

    /// Run the simulation. Deterministic: equal jobs produce equal results
    /// on every invocation, which is what makes the cache sound.
    pub fn execute(&self) -> JobResult {
        self.execute_traced(&mut NullTracer)
    }

    /// Run the simulation with an event tracer attached. Tracing is pure
    /// observation: the [`JobResult`] is byte-identical to [`Job::execute`]
    /// (the determinism test pins this across workloads × designs).
    pub fn execute_traced(&self, tracer: &mut dyn Tracer) -> JobResult {
        match &self.payload {
            Payload::Bench(w) => self.execute_bench(w, tracer),
            Payload::Scenario(sc) => self.execute_scenario(sc, tracer),
        }
    }

    fn execute_bench(&self, w: &Workload, tracer: &mut dyn Tracer) -> JobResult {
        let t0 = Instant::now();
        let (report, memory) = match self.point {
            DesignPoint::PerfectMem => {
                let gpu = GpuSim::new(self.overrides.apply_gpu(GpuConfig::gtx480_perfect_mem()));
                let mut memory = w.fresh_memory();
                let mut nop = simt_sim::NullCoProcessor;
                let report = gpu.run_traced(&w.program(), &mut memory, &mut nop, tracer);
                (report, memory)
            }
            DesignPoint::Hw(Design::Dac) => {
                let gpu = GpuSim::new(self.overrides.apply_gpu(gpu_for(Design::Dac)));
                let run = run_dac_traced(
                    w,
                    &gpu,
                    self.overrides.apply_dac(DacConfig::paper()),
                    tracer,
                );
                (run.report, run.memory)
            }
            DesignPoint::Hw(design) => {
                let gpu = GpuSim::new(self.overrides.apply_gpu(gpu_for(design)));
                let run = run_design_traced(w, design, &gpu, tracer);
                (run.report, run.memory)
            }
        };
        let words = memory.read_u32_vec(w.output.0, w.output.1);
        JobResult {
            report,
            per_kernel: Vec::new(),
            output_digest: digest_words(&words),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            cached: false,
        }
    }

    fn execute_scenario(&self, sc: &Scenario, tracer: &mut dyn Tracer) -> JobResult {
        let t0 = Instant::now();
        let (design, base_cfg) = match self.point {
            DesignPoint::PerfectMem => (Design::Baseline, GpuConfig::gtx480_perfect_mem()),
            DesignPoint::Hw(d) => (d, gpu_for(d)),
        };
        let gpu = GpuSim::new(self.overrides.apply_gpu(base_cfg));
        let run = run_scenario_design_traced(
            sc,
            design,
            &gpu,
            self.policy(),
            self.overrides.apply_dac(DacConfig::paper()),
            tracer,
        );
        let words = sc.output_words(&run.memory);
        JobResult {
            report: SimReport {
                kernel: sc.name.to_string(),
                coproc: self.point.name().to_string(),
                cycles: run.report.cycles,
                stats: run.report.stats,
                mem: run.report.mem,
            },
            per_kernel: run.report.per_kernel,
            output_digest: digest_words(&words),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            cached: false,
        }
    }
}

/// FNV-1a digest of a word vector, little-endian.
fn digest_words(words: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for word in words {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// What a job produced. Everything here round-trips through the cache and
/// the JSONL artifacts except `wall_ms`/`cached`, which describe *this*
/// invocation rather than the simulation.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The simulator report (cycles + core stats + memory stats). For
    /// scenario jobs, `kernel` is the scenario name, `coproc` the design
    /// name, and `stats` the exact field-wise sum over `per_kernel` bins.
    pub report: SimReport,
    /// Per-kernel attribution, stream-major — one entry per launch for
    /// scenario jobs, empty for single-kernel benchmark jobs.
    pub per_kernel: Vec<KernelReport>,
    /// FNV-1a digest of the output memory region, for cross-design
    /// correctness checks without holding the memory image.
    pub output_digest: u64,
    /// Wall-clock milliseconds spent simulating (0 for cache hits).
    pub wall_ms: f64,
    /// Whether this result came from the cache.
    pub cached: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::benchmark;

    fn small() -> Overrides {
        Overrides {
            num_sms: Some(2),
            max_warps_per_sm: Some(16),
            ..Overrides::default()
        }
    }

    #[test]
    fn cache_key_canonicalizes_dac_knobs() {
        let w = Arc::new(benchmark("LIB", 1).unwrap());
        let mut base = Job::new(w.clone(), 1, DesignPoint::Hw(Design::Baseline));
        base.overrides.atq_entries = Some(4);
        // ATQ size is a DAC knob: the baseline key must not change.
        assert_eq!(
            base.cache_key(),
            Job::new(w.clone(), 1, DesignPoint::Hw(Design::Baseline)).cache_key()
        );
        let mut dac = Job::new(w.clone(), 1, DesignPoint::Hw(Design::Dac));
        dac.overrides.atq_entries = Some(4);
        assert_ne!(
            dac.cache_key(),
            Job::new(w, 1, DesignPoint::Hw(Design::Dac)).cache_key()
        );
    }

    #[test]
    fn scale_and_design_separate_keys() {
        let w = Arc::new(benchmark("LIB", 1).unwrap());
        let keys: Vec<String> = DesignPoint::HW_ALL
            .iter()
            .map(|&p| Job::new(w.clone(), 1, p).cache_key())
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(
            Job::new(w.clone(), 1, DesignPoint::PerfectMem).cache_key(),
            Job::new(w, 2, DesignPoint::PerfectMem).cache_key()
        );
    }

    #[test]
    fn execute_is_deterministic() {
        let w = Arc::new(benchmark("LIB", 1).unwrap());
        let mut job = Job::new(w, 1, DesignPoint::Hw(Design::Dac));
        job.overrides = small();
        let a = job.execute();
        let b = job.execute();
        assert_eq!(a.report.cycles, b.report.cycles);
        assert_eq!(a.report.stats, b.report.stats);
        assert_eq!(a.report.mem, b.report.mem);
        assert_eq!(a.output_digest, b.output_digest);
    }

    #[test]
    fn overrides_set_rejects_garbage() {
        let mut o = Overrides::default();
        assert!(o.set("atq_entries", "12").is_ok());
        assert!(o.set("lock_lines", "off").is_ok());
        assert!(o.set("atq_entries", "many").is_err());
        assert!(o.set("lock_lines", "2").is_err());
        assert!(o.set("warp_speed", "9").is_err());
        assert_eq!(o.atq_entries, Some(12));
        assert_eq!(o.lock_lines, Some(false));
    }

    #[test]
    fn design_point_parse_roundtrip() {
        for p in DesignPoint::HW_ALL
            .into_iter()
            .chain([DesignPoint::PerfectMem])
        {
            assert_eq!(DesignPoint::parse(p.name()), Some(p));
            assert_eq!(DesignPoint::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(DesignPoint::parse("warp9"), None);
    }
}

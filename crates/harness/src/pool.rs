//! A channel-based thread pool over `std::thread` (the build environment is
//! offline — no rayon). Work distribution is dynamic (workers pull from a
//! shared deque, so a slow job does not stall the others), but results are
//! collected *by job index*, which makes aggregated output independent of
//! worker count and scheduling order.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Run `f` over `items` on `workers` threads and return results in item
/// order. `workers == 1` degenerates to a plain serial loop on the calling
/// thread (no pool, no channels), which is the reference ordering the
/// determinism test compares against.
///
/// # Panics
///
/// Re-raises the first worker panic with its original payload (the
/// simulator uses panics for correctness violations — they must not be
/// swallowed by the pool, and the message must survive the thread hop).
/// Remaining queued items are abandoned once a worker panics.
pub fn run_indexed<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, Caught<R>)>();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Pop under the lock, execute outside it.
                let job = queue.lock().unwrap().pop_front();
                let Some((i, t)) = job else { break };
                let r = catch_unwind(AssertUnwindSafe(|| f(i, t)));
                if r.is_err() {
                    // Abandon remaining work; the run is doomed anyway.
                    queue.lock().unwrap().clear();
                }
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the loop below ends once every worker is done
        for (i, r) in rx {
            match r {
                Ok(v) => out[i] = Some(v),
                Err(p) => {
                    panic_payload.get_or_insert(p);
                }
            }
        }
    });

    if let Some(p) = panic_payload {
        resume_unwind(p);
    }
    out.into_iter()
        .map(|r| r.expect("pool lost a job result"))
        .collect()
}

/// A persistent worker pool with **non-blocking submission** — the
/// long-lived counterpart of [`run_indexed`], built for the sweep service:
/// `run_indexed` owns the calling thread until a batch drains, while a
/// daemon must keep accepting requests while earlier work executes.
///
/// Tasks are plain closures; ordering guarantees are the *submitter's*
/// responsibility (the service orders by cache key, not completion).
/// A panicking task is caught and reported to stderr, and its worker
/// keeps serving — one poisoned simulation must not wedge the daemon.
/// Dropping the pool closes the queue and joins the workers, finishing
/// whatever was already submitted.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) pulling from a shared queue.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("simt-pool-{i}"))
                    .spawn(move || loop {
                        // Take the next task under the lock, run it outside.
                        let task = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break, // lock poisoned: shutting down
                        };
                        let Ok(task) = task else { break };
                        if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                            let msg = p
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| p.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic".into());
                            simt_obs::metrics::global().counter_add(
                                "simt_pool_task_panics_total",
                                "Worker-pool tasks that panicked (caught; worker kept serving).",
                                &[],
                                1,
                            );
                            simt_obs::warn!("harness.pool", "pool task panicked"; panic = msg);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            workers,
        }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueue a task and return immediately. Tasks start in submission
    /// order (completion order depends on task cost and worker count).
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Send fails only after shutdown started; dropping the task is
            // then correct (the submitter is going away too).
            let _ = tx.send(Box::new(task));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers exit when drained
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_pool_runs_all_tasks_and_drains_on_drop() {
        let count = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(4);
        for _ in 0..100 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn worker_pool_survives_panicking_tasks() {
        let count = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        for i in 0..20 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                if i % 5 == 0 {
                    panic!("task {i} boom");
                }
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_indexed(1, items.clone(), |i, x| (i as u64) * 1000 + x * x);
        let parallel = run_indexed(7, items, |i, x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_indexed(4, vec![(); 250], |i, ()| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 250);
        assert_eq!(out, (0..250).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed::<u32, u32, _>(8, vec![], |_, x| x), vec![]);
        assert_eq!(run_indexed(8, vec![9], |_, x: u32| x + 1), vec![10]);
    }

    #[test]
    fn uses_multiple_threads() {
        // With 4 workers and 4 items that each wait for the others, all
        // four must run concurrently or the test times out via the barrier.
        let barrier = std::sync::Barrier::new(4);
        let out = run_indexed(4, vec![0u32; 4], |i, _| {
            barrier.wait();
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = run_indexed(3, vec![0, 1, 2, 3], |_, x: u32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}

//! `simt-ir` — a PTX-like intermediate representation for SIMT GPU kernels.
//!
//! This crate is the foundation of the DAC reproduction: it defines the
//! instruction set that kernels are written in, containers for kernels and
//! launch configurations, a [`KernelBuilder`] for constructing kernels
//! programmatically, a textual assembler ([`asm::parse_kernel`]), and
//! control-flow analyses (CFG, dominators, post-dominators, reaching
//! definitions) used by both the simulator's SIMT reconvergence stack and the
//! affine decoupling compiler.
//!
//! The machine model is deliberately close to the abstraction level of the
//! paper's pseudo-assembly (Figure 4b): a register machine with 32-thread
//! warps, predicate registers, typed memory spaces, and explicit branch
//! instructions whose reconvergence points are the immediate post-dominators
//! of the branch blocks.
//!
//! # Example
//!
//! ```
//! use simt_ir::{KernelBuilder, Op, Operand, Space, Width};
//!
//! // B[tid] = A[tid] + 1
//! let mut b = KernelBuilder::new("add_one", 2);
//! let tid = b.tid_linear_x();
//! let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
//! let a = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
//! let bb = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
//! let v = b.ld(Space::Global, a, 0, Width::W32);
//! let v1 = b.alu2(Op::Add, Operand::Reg(v), Operand::Imm(1));
//! b.st(Space::Global, bb, 0, Operand::Reg(v1), Width::W32);
//! b.exit();
//! let kernel = b.build();
//! assert_eq!(kernel.name, "add_one");
//! ```

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod disasm;
pub mod eval;
pub mod instr;
pub mod kernel;
pub mod types;

pub use builder::KernelBuilder;
pub use cfg::{Cfg, ReachingDefs};
pub use instr::{AddrMode, AtomOp, CmpOp, Instr, InstrClass, Op, PredSrc, QueueKind};
pub use kernel::{Dim3, Kernel, LaunchConfig, Program};
pub use types::{Operand, PredId, RegId, Space, SpecialReg, Value, Width};

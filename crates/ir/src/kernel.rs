//! Kernel and launch containers.

use crate::instr::Instr;
use crate::types::Value;
use std::fmt;

/// A three-component dimension (grid or block shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension `(x, 1, 1)`.
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension `(x, y, 1)`.
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count `x * y * z`.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Convert a linear index into `(x, y, z)` coordinates (x fastest).
    pub fn unflatten(self, linear: u64) -> (u32, u32, u32) {
        let x = (linear % self.x as u64) as u32;
        let y = ((linear / self.x as u64) % self.y as u64) as u32;
        let z = (linear / (self.x as u64 * self.y as u64)) as u32;
        (x, y, z)
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::x(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A compiled kernel: a flat instruction vector plus resource requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// The instruction stream; branch targets index into this vector.
    pub instrs: Vec<Instr>,
    /// Number of general-purpose virtual registers used.
    pub num_regs: u16,
    /// Number of predicate registers used.
    pub num_preds: u16,
    /// Number of kernel parameter slots.
    pub num_params: u16,
    /// Bytes of shared memory required per CTA.
    pub shared_bytes: u32,
    /// Architectural registers each thread occupies in the SM register
    /// file. At least `num_regs`; kernels may declare more to model the
    /// register pressure of the original program (occupancy accounting —
    /// the command processor multiplies this by the CTA's thread count
    /// against `regfile_per_sm`).
    pub regs_per_thread: u16,
}

impl Kernel {
    /// Validate internal consistency: branch targets in range, register
    /// indices within declared counts, and a terminating `exit` reachable.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed instruction found.
    pub fn validate(&self) -> Result<(), String> {
        if self.instrs.is_empty() {
            return Err("kernel has no instructions".to_string());
        }
        if self.regs_per_thread < self.num_regs {
            return Err(format!(
                "regs_per_thread {} < num_regs {} (occupancy declaration \
                 cannot be smaller than the registers actually used)",
                self.regs_per_thread, self.num_regs
            ));
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Instr::Bra { target, .. } = i {
                if *target >= self.instrs.len() {
                    return Err(format!("pc {pc}: branch target {target} out of range"));
                }
            }
            if let Some(d) = i.def_reg() {
                if d >= self.num_regs {
                    return Err(format!(
                        "pc {pc}: register r{d} >= num_regs {}",
                        self.num_regs
                    ));
                }
            }
            for r in i.src_regs() {
                if r >= self.num_regs {
                    return Err(format!(
                        "pc {pc}: source r{r} >= num_regs {}",
                        self.num_regs
                    ));
                }
            }
            if let Some(p) = i.def_pred() {
                if p >= self.num_preds {
                    return Err(format!(
                        "pc {pc}: predicate p{p} >= num_preds {}",
                        self.num_preds
                    ));
                }
            }
            for o in i.src_operands() {
                if let crate::types::Operand::Param(p) = o {
                    if p >= self.num_params {
                        return Err(format!(
                            "pc {pc}: param %p{p} >= num_params {}",
                            self.num_params
                        ));
                    }
                }
            }
        }
        if !self.instrs.iter().any(|i| matches!(i, Instr::Exit)) {
            return Err("kernel has no exit instruction".to_string());
        }
        Ok(())
    }

    /// Pretty-print the instruction stream with PCs (debugging aid).
    pub fn disassemble(&self) -> String {
        let mut s = format!(
            ".kernel {} // regs={} preds={} params={} shared={}B\n",
            self.name, self.num_regs, self.num_preds, self.num_params, self.shared_bytes
        );
        for (pc, i) in self.instrs.iter().enumerate() {
            s.push_str(&format!("{pc:4}:  {i}\n"));
        }
        s
    }
}

/// A kernel launch: grid/block shape and parameter values.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    /// Parameter slot values (pointers and scalars), indexed by `Param(i)`.
    pub params: Vec<Value>,
}

impl LaunchConfig {
    /// A 1-D launch.
    pub fn linear(grid_x: u32, block_x: u32, params: Vec<Value>) -> Self {
        LaunchConfig {
            grid: Dim3::x(grid_x),
            block: Dim3::x(block_x),
            params,
        }
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per CTA (32 threads per warp, rounded up).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta().div_ceil(32)
    }

    /// Total CTAs in the grid.
    pub fn num_ctas(&self) -> u64 {
        self.grid.count()
    }
}

/// A kernel together with its launch configuration — the unit the simulator
/// executes.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub kernel: Kernel,
    pub launch: LaunchConfig,
}

impl Program {
    /// Bundle a kernel and launch, validating the kernel.
    ///
    /// # Errors
    ///
    /// Returns the kernel validation error, or a mismatch between the
    /// launch's parameter count and the kernel's declared parameter slots.
    pub fn new(kernel: Kernel, launch: LaunchConfig) -> Result<Self, String> {
        kernel.validate()?;
        if launch.params.len() != kernel.num_params as usize {
            return Err(format!(
                "kernel {} expects {} params, launch provides {}",
                kernel.name,
                kernel.num_params,
                launch.params.len()
            ));
        }
        if launch.threads_per_cta() == 0 || launch.threads_per_cta() > 1024 {
            return Err(format!(
                "threads per CTA {} out of range",
                launch.threads_per_cta()
            ));
        }
        Ok(Program { kernel, launch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn trivial_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            instrs: vec![Instr::Exit],
            num_regs: 0,
            num_preds: 0,
            num_params: 0,
            shared_bytes: 0,
            regs_per_thread: 0,
        }
    }

    #[test]
    fn validate_catches_undersized_regs_per_thread() {
        let mut k = trivial_kernel();
        k.num_regs = 4;
        k.regs_per_thread = 2;
        assert!(k.validate().is_err());
        k.regs_per_thread = 4;
        assert!(k.validate().is_ok());
    }

    #[test]
    fn dim3_unflatten() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        assert_eq!(d.count(), 24);
        assert_eq!(d.unflatten(0), (0, 0, 0));
        assert_eq!(d.unflatten(5), (1, 1, 0));
        assert_eq!(d.unflatten(23), (3, 2, 1));
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut k = trivial_kernel();
        k.instrs.insert(
            0,
            Instr::Bra {
                target: 99,
                pred: None,
            },
        );
        assert!(k.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_requires_exit() {
        let mut k = trivial_kernel();
        k.instrs = vec![Instr::Bar];
        assert!(k.validate().unwrap_err().contains("no exit"));
    }

    #[test]
    fn program_param_check() {
        let k = trivial_kernel();
        let err = Program::new(k, LaunchConfig::linear(1, 32, vec![1])).unwrap_err();
        assert!(err.contains("params"));
    }

    #[test]
    fn warps_per_cta_rounds_up() {
        let l = LaunchConfig::linear(1, 33, vec![]);
        assert_eq!(l.warps_per_cta(), 2);
    }
}

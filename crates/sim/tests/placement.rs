//! Launch-time rejection of kernels that can never be placed.
//!
//! A CTA whose static footprint (warp slots, registers, shared memory)
//! exceeds an *empty* SM would make the command processor retry every
//! cycle until the deadlock guard fires hundreds of millions of cycles
//! later. The simulator instead panics immediately at launch validation
//! with a message naming the violated resource — these tests pin that
//! behaviour for each resource axis.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simt_ir::{KernelBuilder, LaunchConfig, Program};
use simt_mem::SparseMemory;
use simt_sim::{GpuConfig, GpuSim};

/// A kernel that just exits, with optional occupancy declarations.
fn trivial_kernel(regs: u16, shared: u32) -> KernelBuilder {
    let mut k = KernelBuilder::new("hog", 0);
    k.regs_per_thread(regs);
    k.shared(shared);
    k.exit();
    k
}

fn run_hog(regs: u16, shared: u32, block: u32) -> Result<(), String> {
    let k = trivial_kernel(regs, shared);
    let prog = Program::new(k.build(), LaunchConfig::linear(1, block, vec![])).unwrap();
    let gpu = GpuSim::new(GpuConfig::test_small());
    catch_unwind(AssertUnwindSafe(|| {
        gpu.run(&prog, &mut SparseMemory::new());
    }))
    .map(|_| ())
    .map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    })
}

#[test]
fn oversized_register_footprint_fails_fast() {
    // 4 warps x 32 lanes x 2000 regs far exceeds the 32 K register file.
    let err = run_hog(2000, 0, 128).unwrap_err();
    assert!(
        err.contains("can never be placed") && err.contains("register"),
        "unexpected panic message: {err}"
    );
}

#[test]
fn oversized_shared_footprint_fails_fast() {
    let cfg = GpuConfig::test_small();
    let err = run_hog(1, cfg.shared_mem_per_sm + 1, 32).unwrap_err();
    assert!(
        err.contains("can never be placed") && err.contains("shared"),
        "unexpected panic message: {err}"
    );
}

#[test]
fn oversized_warp_footprint_fails_fast() {
    // test_small allows 16 resident warps; a 1024-thread CTA needs 32.
    let err = run_hog(1, 0, 1024).unwrap_err();
    assert!(
        err.contains("can never be placed") && err.contains("warps"),
        "unexpected panic message: {err}"
    );
}

#[test]
fn placeable_kernel_still_runs() {
    // Just inside every budget on test_small: 16 warps, 64 regs/thread
    // (16 x 32 x 64 = 32768 exactly), full shared memory.
    let cfg = GpuConfig::test_small();
    run_hog(64, cfg.shared_mem_per_sm, 512).expect("placeable kernel must run");
}

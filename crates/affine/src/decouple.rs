//! The decoupling transform (paper §4.7 "Decoupling"): split a kernel into
//! the affine instruction stream (Figure 7a) and the non-affine stream
//! (Figure 7b).
//!
//! * Eligible loads become `enq.data` (affine) + `ld deq.data` (non-affine);
//! * eligible stores become `enq.addr` + `st [deq.addr]`;
//! * eligible predicate computations become `setp; enq.pred` + `@deq.pred
//!   bra`;
//! * slice (predecessor) instructions move to the affine stream and are
//!   removed from the non-affine stream when nothing left there depends on
//!   them;
//! * control flow that affects affine instructions (decoupleable branches,
//!   barriers) is replicated to both streams; regions under data-dependent
//!   branches are omitted from the affine stream entirely (they contain no
//!   decoupled instructions — see DESIGN.md).

use crate::analysis::{AffineAnalysis, Candidate, CandidateKind};
use simt_ir::{AddrMode, Instr, Kernel, Op, Operand, PredSrc, QueueKind};
use std::collections::{HashMap, HashSet};

/// Statistics about one decoupling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoupleStats {
    /// Loads rewritten to `enq.data`/`deq.data`.
    pub loads: usize,
    /// Stores rewritten to `enq.addr`/`deq.addr`.
    pub stores: usize,
    /// Predicates rewritten to `enq.pred`/`deq.pred`.
    pub preds: usize,
    /// Instructions removed from the non-affine stream.
    pub removed: usize,
    /// Static length of the affine stream.
    pub affine_len: usize,
    /// Static length of the non-affine stream.
    pub non_affine_len: usize,
    /// Static length of the original kernel.
    pub original_len: usize,
}

/// The two streams plus bookkeeping.
#[derive(Debug, Clone)]
pub struct DecoupledKernel {
    /// The affine stream (runs on the DAC affine warp).
    pub affine: Kernel,
    /// The non-affine stream (replaces the original kernel on the SIMT
    /// warps).
    pub non_affine: Kernel,
    /// Whether anything was decoupled at all (false ⇒ both streams are the
    /// original kernel and DAC adds no value).
    pub any_decoupled: bool,
    /// Transform statistics.
    pub stats: DecoupleStats,
}

/// Decouple `kernel` using a completed analysis.
///
/// Always succeeds: when no candidate survives, the result has
/// `any_decoupled == false`, an empty affine stream, and the original
/// kernel as the non-affine stream.
pub fn decouple(kernel: &Kernel, analysis: &AffineAnalysis) -> DecoupledKernel {
    let trivial = || DecoupledKernel {
        affine: Kernel {
            name: format!("{}@affine", kernel.name),
            instrs: vec![Instr::Exit],
            num_regs: 0,
            num_preds: 0,
            num_params: kernel.num_params,
            shared_bytes: 0,
            regs_per_thread: 0,
        },
        non_affine: kernel.clone(),
        any_decoupled: false,
        stats: DecoupleStats {
            original_len: kernel.instrs.len(),
            non_affine_len: kernel.instrs.len(),
            affine_len: 1,
            ..Default::default()
        },
    };

    // Keep only pred candidates consumed by exactly one branch (one enq per
    // deq).
    let candidates: Vec<&Candidate> = analysis
        .candidates
        .iter()
        .filter(|c| match c.kind {
            CandidateKind::Pred => {
                let dst = kernel.instrs[c.pc].def_pred().unwrap();
                let mut branch_uses = 0;
                for (upc, u) in kernel.instrs.iter().enumerate() {
                    if matches!(u, Instr::Bra { pred: Some(PredSrc::Reg(g)), .. } if g.pred == dst)
                        && analysis.rd.pred_defs_at(upc, dst).contains(&c.pc)
                    {
                        branch_uses += 1;
                    }
                }
                branch_uses == 1
            }
            _ => true,
        })
        .collect();
    if candidates.is_empty() {
        return trivial();
    }

    let n = kernel.instrs.len();
    let cand_at: HashMap<usize, &Candidate> = candidates.iter().map(|c| (c.pc, *c)).collect();
    let slice_union: HashSet<usize> = candidates
        .iter()
        .flat_map(|c| c.slice.iter().copied())
        .collect();

    // Branches whose predicate was decoupled: remember the enq'ing setp.
    let mut branch_uses_deq: HashSet<usize> = HashSet::new();
    for c in &candidates {
        if c.kind == CandidateKind::Pred {
            let dst = kernel.instrs[c.pc].def_pred().unwrap();
            for (upc, u) in kernel.instrs.iter().enumerate() {
                if matches!(u, Instr::Bra { pred: Some(PredSrc::Reg(g)), .. } if g.pred == dst)
                    && analysis.rd.pred_defs_at(upc, dst).contains(&c.pc)
                {
                    branch_uses_deq.insert(upc);
                }
            }
        }
    }

    // ----- affine stream membership -----
    // Control skeleton (untainted branches, barriers, exits), slices,
    // candidates; plus setp slices for replicated branches.
    let mut in_affine = vec![false; n];
    #[allow(clippy::needless_range_loop)] // pc is a kernel address, not just an index
    for pc in 0..n {
        if analysis.tainted[pc] {
            continue;
        }
        let i = &kernel.instrs[pc];
        let keep = slice_union.contains(&pc)
            || cand_at.contains_key(&pc)
            || matches!(i, Instr::Bra { .. } | Instr::Bar | Instr::Exit);
        if keep {
            in_affine[pc] = true;
        }
    }
    // Replicated branches need their predicates computable in the affine
    // stream: pull in setp defs and their slices.
    let mut worklist: Vec<usize> = (0..n).filter(|&pc| in_affine[pc]).collect();
    while let Some(pc) = worklist.pop() {
        let i = &kernel.instrs[pc];
        let mut need_regs: Vec<u16> = Vec::new();
        if in_affine[pc] {
            match i {
                Instr::Bra {
                    pred: Some(PredSrc::Reg(g)),
                    ..
                } => {
                    for pd in analysis.rd.pred_defs_at(pc, g.pred) {
                        if analysis.tainted[pd] || !analysis.pred_decoupleable[pd] {
                            return trivial(); // cannot replicate control
                        }
                        if !in_affine[pd] {
                            in_affine[pd] = true;
                            worklist.push(pd);
                        }
                    }
                }
                _ => {
                    // Candidates are rewritten to enq: only the address
                    // register (and guard) is read in the affine stream —
                    // never the stored value or the load destination.
                    match cand_at.get(&pc).map(|c| c.kind) {
                        Some(CandidateKind::LoadData) | Some(CandidateKind::StoreAddr) => match i {
                            Instr::Ld {
                                addr: AddrMode::Reg(r, _),
                                ..
                            }
                            | Instr::St {
                                addr: AddrMode::Reg(r, _),
                                ..
                            } => need_regs.push(*r),
                            _ => unreachable!(),
                        },
                        _ => need_regs.extend(i.src_regs()),
                    }
                    for p in i.src_preds() {
                        for pd in analysis.rd.pred_defs_at(pc, p) {
                            if analysis.tainted[pd] || !analysis.pred_decoupleable[pd] {
                                return trivial();
                            }
                            if !in_affine[pd] {
                                in_affine[pd] = true;
                                worklist.push(pd);
                            }
                        }
                    }
                }
            }
        }
        for r in need_regs {
            for d in analysis.rd.reg_defs_at(pc, r) {
                if analysis.tainted[d] || !analysis.def_class[d].is_affine() {
                    return trivial(); // affine stream cannot compute this
                }
                if !in_affine[d] {
                    in_affine[d] = true;
                    worklist.push(d);
                }
            }
        }
    }

    // ----- build the affine stream -----
    let mut aff_instrs: Vec<Instr> = Vec::new();
    let mut aff_map: HashMap<usize, usize> = HashMap::new(); // old pc → new pc of its first emitted instr
    let mut extra_reg = kernel.num_regs;
    let mut branch_fixups: Vec<(usize, usize)> = Vec::new(); // (aff idx, old target)
    #[allow(clippy::needless_range_loop)] // pc is a kernel address, not just an index
    for pc in 0..n {
        if !in_affine[pc] {
            continue;
        }
        aff_map.insert(pc, aff_instrs.len());
        let i = &kernel.instrs[pc];
        match cand_at.get(&pc).map(|c| c.kind) {
            Some(CandidateKind::LoadData) | Some(CandidateKind::StoreAddr) => {
                let (addr, width, guard, kind, space) = match i {
                    Instr::Ld {
                        addr,
                        width,
                        guard,
                        space,
                        ..
                    } => (*addr, *width, *guard, QueueKind::Data, *space),
                    Instr::St {
                        addr,
                        width,
                        guard,
                        space,
                        ..
                    } => (*addr, *width, *guard, QueueKind::Addr, *space),
                    _ => unreachable!(),
                };
                let AddrMode::Reg(r, disp) = addr else {
                    unreachable!()
                };
                let src = if disp != 0 {
                    let t = extra_reg;
                    extra_reg += 1;
                    aff_instrs.push(Instr::Alu {
                        op: Op::Add,
                        dst: t,
                        srcs: [Operand::Reg(r), Operand::Imm(disp), Operand::Imm(0)],
                        guard,
                    });
                    t
                } else {
                    r
                };
                aff_instrs.push(Instr::Enq {
                    kind,
                    src: Some(src),
                    pred: None,
                    width,
                    space,
                    guard,
                });
            }
            Some(CandidateKind::Pred) => {
                aff_instrs.push(i.clone());
                let dst = i.def_pred().unwrap();
                aff_instrs.push(Instr::Enq {
                    kind: QueueKind::Pred,
                    src: None,
                    pred: Some(dst),
                    width: simt_ir::Width::W32,
                    space: simt_ir::Space::Global,
                    guard: None,
                });
            }
            None => match i {
                Instr::Bra { target, pred } => {
                    branch_fixups.push((aff_instrs.len(), *target));
                    aff_instrs.push(Instr::Bra {
                        target: usize::MAX,
                        pred: *pred,
                    });
                }
                other => aff_instrs.push(other.clone()),
            },
        }
    }
    // Remap affine branch targets: old target → first affine pc at or after
    // it.
    let map_target = |map: &HashMap<usize, usize>, len: usize, old: usize| -> usize {
        (old..n)
            .find_map(|p| map.get(&p).copied())
            .unwrap_or(len.saturating_sub(1))
    };
    for (idx, old) in branch_fixups {
        let t = map_target(&aff_map, aff_instrs.len(), old);
        if let Instr::Bra { target, .. } = &mut aff_instrs[idx] {
            *target = t;
        }
    }
    if !aff_instrs.iter().any(|i| matches!(i, Instr::Exit)) {
        aff_instrs.push(Instr::Exit);
    }

    // ----- build the non-affine stream -----
    // Which slice instructions must stay because something kept uses them?
    let is_candidate = |pc: usize| cand_at.contains_key(&pc);
    let mut stay: HashSet<usize> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 0..n {
            let removed_here =
                (slice_union.contains(&pc) || is_candidate(pc)) && !stay.contains(&pc);
            // Candidates stay (rewritten), so their operand regs count as
            // uses; pure slice instructions only count if staying.
            let counts_as_user = !removed_here || is_candidate(pc);
            if !counts_as_user {
                continue;
            }
            let i = &kernel.instrs[pc];
            // Which registers does the *rewritten* instruction read?
            let read_regs: Vec<u16> = match cand_at.get(&pc).map(|c| c.kind) {
                Some(CandidateKind::LoadData) => Vec::new(), // deq supplies addr
                Some(CandidateKind::StoreAddr) => match i {
                    Instr::St { src, .. } => src.reg().into_iter().collect(),
                    _ => Vec::new(),
                },
                Some(CandidateKind::Pred) => Vec::new(), // setp removed
                None => i.src_regs(),
            };
            for r in read_regs {
                for d in analysis.rd.reg_defs_at(pc, r) {
                    if slice_union.contains(&d) && stay.insert(d) {
                        changed = true;
                    }
                }
            }
            // Predicates still read directly (guards, non-decoupled
            // branches) keep their setps.
            let reads_preds: Vec<u16> = match cand_at.get(&pc).map(|c| c.kind) {
                Some(CandidateKind::Pred) => Vec::new(),
                _ => {
                    // Decoupled branches and rewritten ld/st drop their
                    // guards; everything else keeps its setps.
                    if branch_uses_deq.contains(&pc) || cand_at.contains_key(&pc) {
                        Vec::new()
                    } else {
                        i.src_preds()
                    }
                }
            };
            for p in reads_preds {
                for d in analysis.rd.pred_defs_at(pc, p) {
                    if slice_union.contains(&d) && stay.insert(d) {
                        changed = true;
                    }
                }
            }
        }
    }

    let mut na_instrs: Vec<Instr> = Vec::new();
    let mut na_map: HashMap<usize, usize> = HashMap::new();
    let mut na_fixups: Vec<(usize, usize)> = Vec::new();
    let mut stats = DecoupleStats {
        original_len: n,
        ..Default::default()
    };
    for pc in 0..n {
        let i = &kernel.instrs[pc];
        let removed = (slice_union.contains(&pc) && !stay.contains(&pc) && !is_candidate(pc))
            || matches!(cand_at.get(&pc).map(|c| c.kind), Some(CandidateKind::Pred));
        if removed {
            stats.removed += 1;
            continue;
        }
        na_map.insert(pc, na_instrs.len());
        match cand_at.get(&pc).map(|c| c.kind) {
            Some(CandidateKind::LoadData) => {
                stats.loads += 1;
                let Instr::Ld {
                    dst, space, width, ..
                } = i
                else {
                    unreachable!()
                };
                na_instrs.push(Instr::Ld {
                    dst: *dst,
                    space: *space,
                    addr: AddrMode::DeqData,
                    width: *width,
                    guard: None, // mask lives in the record
                });
            }
            Some(CandidateKind::StoreAddr) => {
                stats.stores += 1;
                let Instr::St {
                    space, src, width, ..
                } = i
                else {
                    unreachable!()
                };
                na_instrs.push(Instr::St {
                    space: *space,
                    addr: AddrMode::DeqAddr,
                    src: *src,
                    width: *width,
                    guard: None,
                });
            }
            Some(CandidateKind::Pred) => unreachable!("removed above"),
            None => match i {
                Instr::Bra { target, pred } => {
                    let pred = if branch_uses_deq.contains(&pc) {
                        stats.preds += 1;
                        let negate = match pred {
                            Some(PredSrc::Reg(g)) => g.negate,
                            _ => false,
                        };
                        Some(PredSrc::Deq { negate })
                    } else {
                        *pred
                    };
                    na_fixups.push((na_instrs.len(), *target));
                    na_instrs.push(Instr::Bra {
                        target: usize::MAX,
                        pred,
                    });
                }
                other => na_instrs.push(other.clone()),
            },
        }
    }
    for (idx, old) in na_fixups {
        let t = map_target(&na_map, na_instrs.len(), old);
        if let Instr::Bra { target, .. } = &mut na_instrs[idx] {
            *target = t;
        }
    }

    stats.affine_len = aff_instrs.len();
    stats.non_affine_len = na_instrs.len();

    let affine = Kernel {
        name: format!("{}@affine", kernel.name),
        instrs: aff_instrs,
        num_regs: extra_reg,
        num_preds: kernel.num_preds,
        num_params: kernel.num_params,
        shared_bytes: 0,
        regs_per_thread: extra_reg,
    };
    let non_affine = Kernel {
        name: format!("{}@nonaffine", kernel.name),
        instrs: na_instrs,
        num_regs: kernel.num_regs,
        num_preds: kernel.num_preds,
        num_params: kernel.num_params,
        shared_bytes: kernel.shared_bytes,
        // Decoupling does not shrink the register allocation: the
        // non-affine stream occupies the same register-file footprint as
        // the original kernel, so DAC's occupancy matches the baseline's.
        regs_per_thread: kernel.regs_per_thread,
    };
    if affine.validate().is_err() || non_affine.validate().is_err() {
        return trivial();
    }
    DecoupledKernel {
        affine,
        non_affine,
        any_decoupled: true,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AffineAnalysis;

    fn figure4_kernel() -> Kernel {
        simt_ir::asm::parse_kernel(
            r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
        )
        .unwrap()
    }

    fn decoupled_figure4() -> DecoupledKernel {
        let k = figure4_kernel();
        let a = AffineAnalysis::run(&k);
        decouple(&k, &a)
    }

    #[test]
    fn figure7_shape() {
        let d = decoupled_figure4();
        assert!(d.any_decoupled);
        assert_eq!(d.stats.loads, 1);
        assert_eq!(d.stats.stores, 1);
        assert_eq!(d.stats.preds, 1);
        // Affine stream contains enq.data, enq.addr, enq.pred.
        let kinds: Vec<QueueKind> = d
            .affine
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Enq { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&QueueKind::Data));
        assert!(kinds.contains(&QueueKind::Addr));
        assert!(kinds.contains(&QueueKind::Pred));
        // Non-affine stream: deq forms, and it got much shorter — the
        // paper's Figure 7b has 5 instructions from 16.
        assert!(d.non_affine.instrs.iter().any(|i| matches!(
            i,
            Instr::Ld {
                addr: AddrMode::DeqData,
                ..
            }
        )));
        assert!(d.non_affine.instrs.iter().any(|i| matches!(
            i,
            Instr::St {
                addr: AddrMode::DeqAddr,
                ..
            }
        )));
        assert!(d.non_affine.instrs.iter().any(|i| matches!(
            i,
            Instr::Bra {
                pred: Some(PredSrc::Deq { .. }),
                ..
            }
        )));
        assert!(
            d.non_affine.instrs.len() <= 6,
            "non-affine stream too long:\n{}",
            d.non_affine.disassemble()
        );
        d.affine.validate().unwrap();
        d.non_affine.validate().unwrap();
    }

    #[test]
    fn nonaffine_loop_branch_targets_loop_head() {
        let d = decoupled_figure4();
        // The non-affine stream is LOOP: ld, add, st, @deq.pred bra LOOP;
        // exit — the branch must target the ld.
        let bra_idx = d
            .non_affine
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Bra { .. }))
            .unwrap();
        let ld_idx = d
            .non_affine
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Ld { .. }))
            .unwrap();
        match d.non_affine.instrs[bra_idx] {
            Instr::Bra { target, .. } => assert_eq!(target, ld_idx),
            _ => unreachable!(),
        }
    }

    #[test]
    fn affine_stream_keeps_address_updates() {
        let d = decoupled_figure4();
        // The loop-carried address updates (add r3, r8, r3) live in the
        // affine stream.
        let has_addr_update = d.affine.instrs.iter().any(|i| {
            matches!(
                i,
                Instr::Alu {
                    op: Op::Add,
                    dst: 3,
                    ..
                }
            )
        });
        assert!(has_addr_update, "{}", d.affine.disassemble());
        // And the affine loop branch exists.
        assert!(d.affine.instrs.iter().any(|i| matches!(
            i,
            Instr::Bra {
                pred: Some(PredSrc::Reg(_)),
                ..
            }
        )));
    }

    #[test]
    fn no_candidates_yields_trivial() {
        // Pure indirect chase: nothing to decouple... the first load is
        // affine though, so use registers only.
        let k = simt_ir::asm::parse_kernel(
            ".kernel nothing\n.params 1\n mov r0, 5;\n add r1, r0, r0;\n exit;",
        )
        .unwrap();
        let a = AffineAnalysis::run(&k);
        let d = decouple(&k, &a);
        assert!(!d.any_decoupled);
        assert_eq!(d.non_affine.instrs.len(), k.instrs.len());
    }

    #[test]
    fn displaced_address_gets_add_before_enq() {
        let k = simt_ir::asm::parse_kernel(
            r#"
.kernel disp
.params 1
    mul r0, %tid.x, 4;
    add r1, %p0, r0;
    ld.global r2, [r1+8];
    exit;
"#,
        )
        .unwrap();
        let a = AffineAnalysis::run(&k);
        let d = decouple(&k, &a);
        assert!(d.any_decoupled);
        // An Add of the displacement precedes the enq.
        let enq_idx = d
            .affine
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Enq { .. }))
            .unwrap();
        match &d.affine.instrs[enq_idx - 1] {
            Instr::Alu {
                op: Op::Add, srcs, ..
            } => {
                assert_eq!(srcs[1], Operand::Imm(8));
            }
            i => panic!("expected displacement add, got {i}"),
        }
    }

    #[test]
    fn store_value_dependency_keeps_slice_instr() {
        // The stored VALUE is the affine tid — its defs must stay in the
        // non-affine stream even though they are also in the address slice.
        let k = simt_ir::asm::parse_kernel(
            r#"
.kernel keep
.params 1
    mul r0, %tid.x, 4;
    add r1, %p0, r0;
    st.global [r1], r0;
    exit;
"#,
        )
        .unwrap();
        let a = AffineAnalysis::run(&k);
        let d = decouple(&k, &a);
        assert!(d.any_decoupled);
        // r0's def must survive in the non-affine stream (store reads it).
        assert!(
            d.non_affine
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Alu { dst: 0, .. })),
            "{}",
            d.non_affine.disassemble()
        );
    }

    #[test]
    fn enq_deq_counts_align() {
        let d = decoupled_figure4();
        let enqs = d
            .affine
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Enq { .. }))
            .count();
        let deqs = d
            .non_affine
            .instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Ld {
                        addr: AddrMode::DeqData,
                        ..
                    } | Instr::St {
                        addr: AddrMode::DeqAddr,
                        ..
                    } | Instr::Bra {
                        pred: Some(PredSrc::Deq { .. }),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(enqs, deqs);
    }
}
